package service

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/jobs"
	"lodim/internal/schedule"
	"lodim/internal/slo"
)

// latencyBuckets are the upper bounds (seconds) of the search-latency
// histogram, log-spaced from "cache-adjacent" to "deep search". An
// implicit +Inf bucket catches the rest.
var latencyBuckets = [numLatencyBuckets]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

const numLatencyBuckets = 7

// metrics aggregates the service counters. All fields are atomics so
// the hot request path never takes a lock for observability.
type metrics struct {
	mapRequests              atomic.Int64
	paretoRequests           atomic.Int64
	conflictRequests         atomic.Int64
	simulateRequests         atomic.Int64
	verifyRequests           atomic.Int64
	batchRequests            atomic.Int64
	jobsRequests             atomic.Int64
	peerLookupRequests       atomic.Int64
	peerFillRequests         atomic.Int64
	peerParetoLookupRequests atomic.Int64
	peerParetoFillRequests   atomic.Int64
	peerStatusRequests       atomic.Int64
	clusterStatusRequests    atomic.Int64

	verifyCacheHits   atomic.Int64
	verifyCacheMisses atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	searches    atomic.Int64 // actual joint searches executed
	deduped     atomic.Int64 // requests that joined an in-progress flight

	rejected atomic.Int64 // admission-control rejections (429)
	timeouts atomic.Int64 // requests ended by deadline/cancellation
	failures atomic.Int64 // internal errors (500)

	inflight atomic.Int64 // searches holding a pool slot right now
	queued   atomic.Int64 // requests waiting for a slot right now

	latCounts [numLatencyBuckets + 1]atomic.Int64
	latSumNs  atomic.Int64
	latCount  atomic.Int64
	// latExemplars retains, per bucket, the most recently observed
	// (trace-id, value, timestamp) — rendered in OpenMetrics exemplar
	// syntax on /metrics and as the click-through table on
	// /debug/requests. One pointer swap per search; no lock.
	latExemplars [numLatencyBuckets + 1]atomic.Pointer[exemplar]

	// Per-stage request-timing histograms (same bucket bounds as the
	// search-latency histogram), indexed by the timing.go stage
	// constants.
	stageCounts [numStages][numLatencyBuckets + 1]atomic.Int64
	stageSumNs  [numStages]atomic.Int64
	stageCount  [numStages]atomic.Int64

	// Search-effort counters aggregated from schedule.SearchStats.
	prunedOrbit        atomic.Int64
	prunedLowerBound   atomic.Int64
	prunedIncumbent    atomic.Int64
	spaceCandidates    atomic.Int64
	scheduleCandidates atomic.Int64
	costLevels         atomic.Int64
	innerSearches      atomic.Int64

	// Cluster-tier counters. The forward family is the non-owner side
	// (what happened when this node forwarded a key to its owner); the
	// served family is the owner side (dispositions of peer lookups this
	// node answered); fills track /peer/v1/fill traffic both ways.
	// Rendered only when clustered is true, so a single-node /metrics
	// stays unchanged.
	clustered         bool
	peerForwardHit    atomic.Int64 // owner answered from its cache
	peerForwardMiss   atomic.Int64 // owner ran the search for us
	peerForwardShared atomic.Int64 // owner joined an in-flight search
	peerForwardErrors atomic.Int64 // forward failed → local fallback search
	peerServedHit     atomic.Int64
	peerServedMiss    atomic.Int64
	peerServedShared  atomic.Int64
	peerFillsSent     atomic.Int64
	peerFillsRecv     atomic.Int64
	peerFillsRejected atomic.Int64
	peerFillSendErrs  atomic.Int64

	// cacheStats, when set, reports the LRU's (entries, evictions,
	// bytes-estimate) occupancy — wired by service.New like
	// traceCounters, so the metrics layer needs no cache dependency.
	cacheStats func() (entries, evictions, bytes int64)

	// traceCounters, when set, reports the tracer's (started, dropped,
	// finished) span/trace counts — wired by service.New so the metrics
	// layer needs no tracer dependency.
	traceCounters func() (started, dropped, finished int64)

	// jobStats, when set, reports the async job tier's counters — wired
	// by service.New like cacheStats, and gating the jobs metric
	// families so a node without the tier renders none of them.
	jobStats func() jobs.Stats
	// jobsForwarded counts job-endpoint requests this node proxied to
	// their ring owner (the job tier's analogue of peer_forward).
	jobsForwarded atomic.Int64

	// sloStats, when set, reports the SLO engine's snapshot — wired by
	// service.New when objectives are configured, and gating the SLO
	// metric families.
	sloStats func() slo.Snapshot

	// tenantStats, when set, reports the bounded per-tenant usage table
	// sorted by tenant name — wired by service.New, gating the tenant
	// families.
	tenantStats func() []cluster.TenantUsage
}

// exemplar is one retained histogram-bucket exemplar.
type exemplar struct {
	traceID string
	value   float64 // seconds
	unixMS  int64
}

// requestCounter returns the per-endpoint request counter; the
// instrument wrapper is its only incrementer, so each request counts
// exactly once on every path.
func (m *metrics) requestCounter(endpoint string) *atomic.Int64 {
	switch endpoint {
	case "map":
		return &m.mapRequests
	case "conflict":
		return &m.conflictRequests
	case "simulate":
		return &m.simulateRequests
	case "verify":
		return &m.verifyRequests
	case "batch":
		return &m.batchRequests
	case "jobs":
		return &m.jobsRequests
	case "peer_lookup":
		return &m.peerLookupRequests
	case "peer_fill":
		return &m.peerFillRequests
	case "pareto":
		return &m.paretoRequests
	case "peer_pareto_lookup":
		return &m.peerParetoLookupRequests
	case "peer_pareto_fill":
		return &m.peerParetoFillRequests
	case "peer_status":
		return &m.peerStatusRequests
	case "cluster_status":
		return &m.clusterStatusRequests
	}
	panic("service: unknown endpoint " + endpoint)
}

// requestsTotal sums every endpoint counter — the node-level request
// count the cluster status page reports.
func (m *metrics) requestsTotal() int64 {
	return m.mapRequests.Load() + m.paretoRequests.Load() + m.conflictRequests.Load() +
		m.simulateRequests.Load() + m.verifyRequests.Load() + m.batchRequests.Load() +
		m.jobsRequests.Load() + m.peerLookupRequests.Load() + m.peerFillRequests.Load() +
		m.peerParetoLookupRequests.Load() + m.peerParetoFillRequests.Load() +
		m.peerStatusRequests.Load() + m.clusterStatusRequests.Load()
}

// bucketIndex returns the histogram bucket for a duration in seconds.
func bucketIndex(secs float64) int {
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	return i
}

// observeStage records one stage duration in its histogram.
func (m *metrics) observeStage(stage int, d time.Duration) {
	m.stageCounts[stage][bucketIndex(d.Seconds())].Add(1)
	m.stageSumNs[stage].Add(d.Nanoseconds())
	m.stageCount[stage].Add(1)
}

// observeTimer folds a finished request's stage timings into the
// per-stage histograms.
func (m *metrics) observeTimer(t *reqTimer) {
	for stage := 0; stage < numStages; stage++ {
		if d, ok := t.duration(stage); ok {
			m.observeStage(stage, d)
		}
	}
}

// observeSearchStats folds one search's effort report into the
// aggregate pruning counters.
func (m *metrics) observeSearchStats(st *schedule.SearchStats) {
	if st == nil {
		return
	}
	m.prunedOrbit.Add(st.PrunedOrbit)
	m.prunedLowerBound.Add(st.PrunedLowerBound)
	m.prunedIncumbent.Add(st.PrunedIncumbent)
	m.spaceCandidates.Add(st.SpaceCandidates)
	m.scheduleCandidates.Add(st.ScheduleCandidates)
	m.costLevels.Add(st.CostLevels)
	m.innerSearches.Add(st.InnerSearches)
}

// observeSearch records one search latency in the histogram and, when
// the request carries a trace, retains it as the bucket's exemplar.
func (m *metrics) observeSearch(d time.Duration, traceID string) {
	idx := bucketIndex(d.Seconds())
	m.latCounts[idx].Add(1)
	m.latSumNs.Add(d.Nanoseconds())
	m.latCount.Add(1)
	if traceID != "" {
		m.latExemplars[idx].Store(&exemplar{
			traceID: traceID,
			value:   d.Seconds(),
			unixMS:  time.Now().UnixMilli(),
		})
	}
}

// exemplarBucketLabel is the le label of bucket i ("+Inf" for the
// overflow bucket) — shared by the Prometheus render, the expvar
// snapshot, and the /debug/requests table so they can never disagree.
func exemplarBucketLabel(i int) string {
	if i >= numLatencyBuckets {
		return "+Inf"
	}
	return strconv.FormatFloat(latencyBuckets[i], 'g', -1, 64)
}

// exemplars returns the retained bucket exemplars in bucket order.
func (m *metrics) exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := 0; i <= numLatencyBuckets; i++ {
		ex := m.latExemplars[i].Load()
		if ex == nil {
			continue
		}
		out = append(out, BucketExemplar{
			Bucket:  exemplarBucketLabel(i),
			TraceID: ex.traceID,
			Value:   ex.value,
			UnixMS:  ex.unixMS,
		})
	}
	return out
}

// BucketExemplar is one bucket's retained exemplar in exported form.
type BucketExemplar struct {
	Bucket  string
	TraceID string
	Value   float64 // seconds
	UnixMS  int64
}

// WritePrometheus renders the counters in the Prometheus text
// exposition format (the GET /metrics payload).
func (m *metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP mapserve_requests_total Requests received, by endpoint.\n# TYPE mapserve_requests_total counter\n")
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"map\"} %d\n", m.mapRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"pareto\"} %d\n", m.paretoRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"conflict\"} %d\n", m.conflictRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"simulate\"} %d\n", m.simulateRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"verify\"} %d\n", m.verifyRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"batch\"} %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"jobs\"} %d\n", m.jobsRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"peer_lookup\"} %d\n", m.peerLookupRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"peer_fill\"} %d\n", m.peerFillRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"peer_status\"} %d\n", m.peerStatusRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"cluster_status\"} %d\n", m.clusterStatusRequests.Load())
	if m.clustered {
		fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"peer_pareto_lookup\"} %d\n", m.peerParetoLookupRequests.Load())
		fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"peer_pareto_fill\"} %d\n", m.peerParetoFillRequests.Load())
	}
	counter("mapserve_cache_hits_total", "Map requests answered from the canonical result cache.", m.cacheHits.Load())
	counter("mapserve_cache_misses_total", "Map requests that required a search.", m.cacheMisses.Load())
	counter("mapserve_verify_cache_hits_total", "Verify requests answered from the canonical certificate cache.", m.verifyCacheHits.Load())
	counter("mapserve_verify_cache_misses_total", "Verify requests that ran the certification engine.", m.verifyCacheMisses.Load())
	counter("mapserve_searches_total", "Joint (S, Pi) searches actually executed.", m.searches.Load())
	counter("mapserve_singleflight_deduped_total", "Map requests that joined an identical in-progress search.", m.deduped.Load())
	counter("mapserve_rejected_total", "Requests rejected by admission control.", m.rejected.Load())
	counter("mapserve_timeouts_total", "Requests ended by deadline or cancellation.", m.timeouts.Load())
	counter("mapserve_failures_total", "Requests failed with an internal error.", m.failures.Load())
	gauge("mapserve_inflight_searches", "Searches holding a worker-pool slot.", m.inflight.Load())
	gauge("mapserve_queued_requests", "Requests waiting for a worker-pool slot.", m.queued.Load())
	if hits, misses := m.cacheHits.Load(), m.cacheMisses.Load(); hits+misses > 0 {
		fmt.Fprintf(w, "# HELP mapserve_cache_hit_ratio Cache hits over cacheable map requests.\n# TYPE mapserve_cache_hit_ratio gauge\nmapserve_cache_hit_ratio %.6f\n",
			float64(hits)/float64(hits+misses))
	}
	if m.cacheStats != nil {
		entries, evictions, bytes := m.cacheStats()
		gauge("mapserve_cache_entries", "Resident canonical cache entries.", entries)
		counter("mapserve_cache_evictions_total", "Entries evicted by LRU capacity pressure.", evictions)
		gauge("mapserve_cache_bytes_estimate", "Estimated bytes held by resident cache entries.", bytes)
	}
	if m.clustered {
		fmt.Fprintf(w, "# HELP mapserve_peer_forward_total Lookups this node forwarded to key owners, by outcome.\n# TYPE mapserve_peer_forward_total counter\n")
		fmt.Fprintf(w, "mapserve_peer_forward_total{outcome=\"hit\"} %d\n", m.peerForwardHit.Load())
		fmt.Fprintf(w, "mapserve_peer_forward_total{outcome=\"miss\"} %d\n", m.peerForwardMiss.Load())
		fmt.Fprintf(w, "mapserve_peer_forward_total{outcome=\"shared\"} %d\n", m.peerForwardShared.Load())
		fmt.Fprintf(w, "mapserve_peer_forward_total{outcome=\"error\"} %d\n", m.peerForwardErrors.Load())
		fmt.Fprintf(w, "# HELP mapserve_peer_served_total Peer lookups this node answered as owner, by disposition.\n# TYPE mapserve_peer_served_total counter\n")
		fmt.Fprintf(w, "mapserve_peer_served_total{disposition=\"hit\"} %d\n", m.peerServedHit.Load())
		fmt.Fprintf(w, "mapserve_peer_served_total{disposition=\"miss\"} %d\n", m.peerServedMiss.Load())
		fmt.Fprintf(w, "mapserve_peer_served_total{disposition=\"shared\"} %d\n", m.peerServedShared.Load())
		fmt.Fprintf(w, "# HELP mapserve_peer_fills_total Peer cache-fill traffic, by kind.\n# TYPE mapserve_peer_fills_total counter\n")
		fmt.Fprintf(w, "mapserve_peer_fills_total{kind=\"sent\"} %d\n", m.peerFillsSent.Load())
		fmt.Fprintf(w, "mapserve_peer_fills_total{kind=\"received\"} %d\n", m.peerFillsRecv.Load())
		fmt.Fprintf(w, "mapserve_peer_fills_total{kind=\"rejected\"} %d\n", m.peerFillsRejected.Load())
		fmt.Fprintf(w, "mapserve_peer_fills_total{kind=\"send_error\"} %d\n", m.peerFillSendErrs.Load())
	}
	fmt.Fprintf(w, "# HELP mapserve_search_pruned_total Search candidates removed before evaluation, by pruning rule.\n# TYPE mapserve_search_pruned_total counter\n")
	fmt.Fprintf(w, "mapserve_search_pruned_total{rule=\"orbit\"} %d\n", m.prunedOrbit.Load())
	fmt.Fprintf(w, "mapserve_search_pruned_total{rule=\"lower_bound\"} %d\n", m.prunedLowerBound.Load())
	fmt.Fprintf(w, "mapserve_search_pruned_total{rule=\"incumbent\"} %d\n", m.prunedIncumbent.Load())
	counter("mapserve_search_space_candidates_total", "Space mappings enumerated by the joint search.", m.spaceCandidates.Load())
	counter("mapserve_search_schedule_candidates_total", "Schedule vectors examined across all inner searches.", m.scheduleCandidates.Load())
	counter("mapserve_search_cost_levels_total", "Objective levels stepped through by Procedure 5.1.", m.costLevels.Load())
	counter("mapserve_search_inner_searches_total", "Inner Procedure 5.1 searches launched by the joint search.", m.innerSearches.Load())
	if m.traceCounters != nil {
		spans, dropped, finished := m.traceCounters()
		counter("mapserve_trace_spans_total", "Trace spans started.", spans)
		counter("mapserve_trace_spans_dropped_total", "Spans dropped by the per-trace span cap.", dropped)
		counter("mapserve_traces_total", "Traces completed.", finished)
	}
	if m.jobStats != nil {
		st := m.jobStats()
		fmt.Fprintf(w, "# HELP mapserve_jobs_total Async job lifecycle events, by kind.\n# TYPE mapserve_jobs_total counter\n")
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"submitted\"} %d\n", st.Submitted)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"deduped\"} %d\n", st.Deduped)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"rejected\"} %d\n", st.Rejected)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"done\"} %d\n", st.Done)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"failed\"} %d\n", st.Failed)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"cancelled\"} %d\n", st.Cancelled)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"resumed\"} %d\n", st.Resumed)
		fmt.Fprintf(w, "mapserve_jobs_total{event=\"requeued\"} %d\n", st.Requeued)
		gauge("mapserve_jobs_queued", "Jobs waiting for a job worker.", st.Queued)
		gauge("mapserve_jobs_running", "Jobs holding a job worker.", st.Running)
		counter("mapserve_jobs_forwarded_total", "Job requests proxied to their ring owner.", m.jobsForwarded.Load())
	}
	if m.sloStats != nil {
		snap := m.sloStats()
		fmt.Fprintf(w, "# HELP mapserve_slo_burn_rate Error-budget burn rate per objective and rolling window (1 = sustainable).\n# TYPE mapserve_slo_burn_rate gauge\n")
		for _, ob := range snap.Objectives {
			for _, wb := range ob.Burn {
				fmt.Fprintf(w, "mapserve_slo_burn_rate{objective=%q,window=%q} %.6f\n", ob.Name, wb.Window, wb.Burn)
			}
		}
		fmt.Fprintf(w, "# HELP mapserve_slo_budget_remaining Slow-window error budget left per objective (negative = overspending).\n# TYPE mapserve_slo_budget_remaining gauge\n")
		for _, ob := range snap.Objectives {
			fmt.Fprintf(w, "mapserve_slo_budget_remaining{objective=%q} %.6f\n", ob.Name, ob.BudgetRemaining)
		}
		fmt.Fprintf(w, "# HELP mapserve_slo_breached Whether the objective is currently breached.\n# TYPE mapserve_slo_breached gauge\n")
		for _, ob := range snap.Objectives {
			fmt.Fprintf(w, "mapserve_slo_breached{objective=%q} %d\n", ob.Name, boolToInt(ob.Breached))
		}
		fmt.Fprintf(w, "# HELP mapserve_slo_breaches_total Breach transitions per objective.\n# TYPE mapserve_slo_breaches_total counter\n")
		for _, ob := range snap.Objectives {
			fmt.Fprintf(w, "mapserve_slo_breaches_total{objective=%q} %d\n", ob.Name, ob.Breaches)
		}
		fmt.Fprintf(w, "# HELP mapserve_slo_captures_total Evidence captures triggered per objective.\n# TYPE mapserve_slo_captures_total counter\n")
		for _, ob := range snap.Objectives {
			fmt.Fprintf(w, "mapserve_slo_captures_total{objective=%q} %d\n", ob.Name, ob.Captures)
		}
	}
	if m.tenantStats != nil {
		tenants := m.tenantStats()
		fmt.Fprintf(w, "# HELP mapserve_tenant_requests_total Sync requests per tenant (bounded cardinality; overflow folds into \"other\").\n# TYPE mapserve_tenant_requests_total counter\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "mapserve_tenant_requests_total{tenant=%q} %d\n", t.Tenant, t.Requests)
		}
		fmt.Fprintf(w, "# HELP mapserve_tenant_cache_hits_total Cache-served requests per tenant.\n# TYPE mapserve_tenant_cache_hits_total counter\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "mapserve_tenant_cache_hits_total{tenant=%q} %d\n", t.Tenant, t.CacheHits)
		}
		fmt.Fprintf(w, "# HELP mapserve_tenant_search_milliseconds_total Search wall time spent per tenant.\n# TYPE mapserve_tenant_search_milliseconds_total counter\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "mapserve_tenant_search_milliseconds_total{tenant=%q} %d\n", t.Tenant, t.SearchMillis)
		}
		fmt.Fprintf(w, "# HELP mapserve_tenant_queue_rejections_total 429 rejections per tenant.\n# TYPE mapserve_tenant_queue_rejections_total counter\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "mapserve_tenant_queue_rejections_total{tenant=%q} %d\n", t.Tenant, t.QueueRejections)
		}
	}
	fmt.Fprintf(w, "# HELP mapserve_search_latency_seconds Joint search wall time.\n# TYPE mapserve_search_latency_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i].Load()
		fmt.Fprintf(w, "mapserve_search_latency_seconds_bucket{le=\"%g\"} %d", ub, cum)
		m.writeExemplar(w, i)
		io.WriteString(w, "\n")
	}
	cum += m.latCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "mapserve_search_latency_seconds_bucket{le=\"+Inf\"} %d", cum)
	m.writeExemplar(w, numLatencyBuckets)
	io.WriteString(w, "\n")
	fmt.Fprintf(w, "mapserve_search_latency_seconds_sum %.9f\n", float64(m.latSumNs.Load())/1e9)
	fmt.Fprintf(w, "mapserve_search_latency_seconds_count %d\n", m.latCount.Load())
	fmt.Fprintf(w, "# HELP mapserve_stage_duration_seconds Request time per processing stage.\n# TYPE mapserve_stage_duration_seconds histogram\n")
	for stage := 0; stage < numStages; stage++ {
		name := stageNames[stage]
		var c int64
		for i, ub := range latencyBuckets {
			c += m.stageCounts[stage][i].Load()
			fmt.Fprintf(w, "mapserve_stage_duration_seconds_bucket{stage=%q,le=\"%g\"} %d\n", name, ub, c)
		}
		c += m.stageCounts[stage][len(latencyBuckets)].Load()
		fmt.Fprintf(w, "mapserve_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, c)
		fmt.Fprintf(w, "mapserve_stage_duration_seconds_sum{stage=%q} %.9f\n", name, float64(m.stageSumNs[stage].Load())/1e9)
		fmt.Fprintf(w, "mapserve_stage_duration_seconds_count{stage=%q} %d\n", name, m.stageCount[stage].Load())
	}
}

// writeExemplar appends bucket i's exemplar in OpenMetrics syntax
// (" # {trace_id=\"…\"} value timestamp"), or nothing when the bucket
// has none. Prometheus ≥ 2.26 ingests these; plain text-format parsers
// treat the suffix as a comment.
func (m *metrics) writeExemplar(w io.Writer, i int) {
	ex := m.latExemplars[i].Load()
	if ex == nil {
		return
	}
	fmt.Fprintf(w, " # {trace_id=%q} %.9f %.3f", ex.traceID, ex.value, float64(ex.unixMS)/1e3)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Snapshot returns the counters as a flat map — the expvar surface
// published by cmd/mapserve.
func (m *metrics) Snapshot() map[string]any {
	out := map[string]any{
		"map_requests":            m.mapRequests.Load(),
		"pareto_requests":         m.paretoRequests.Load(),
		"conflict_requests":       m.conflictRequests.Load(),
		"simulate_requests":       m.simulateRequests.Load(),
		"verify_requests":         m.verifyRequests.Load(),
		"batch_requests":          m.batchRequests.Load(),
		"jobs_requests":           m.jobsRequests.Load(),
		"peer_lookup_requests":    m.peerLookupRequests.Load(),
		"peer_fill_requests":      m.peerFillRequests.Load(),
		"peer_status_requests":    m.peerStatusRequests.Load(),
		"cluster_status_requests": m.clusterStatusRequests.Load(),
		"cache_hits":              m.cacheHits.Load(),
		"cache_misses":            m.cacheMisses.Load(),
		"verify_cache_hits":       m.verifyCacheHits.Load(),
		"verify_cache_misses":     m.verifyCacheMisses.Load(),
		"searches":                m.searches.Load(),
		"singleflight_deduped":    m.deduped.Load(),
		"rejected":                m.rejected.Load(),
		"timeouts":                m.timeouts.Load(),
		"failures":                m.failures.Load(),
		"inflight_searches":       m.inflight.Load(),
		"queued_requests":         m.queued.Load(),
		"search_latency_count":    m.latCount.Load(),
		"search_latency_sum_s":    float64(m.latSumNs.Load()) / 1e9,
	}
	out["search_pruned_orbit"] = m.prunedOrbit.Load()
	out["search_pruned_lower_bound"] = m.prunedLowerBound.Load()
	out["search_pruned_incumbent"] = m.prunedIncumbent.Load()
	out["search_space_candidates"] = m.spaceCandidates.Load()
	out["search_schedule_candidates"] = m.scheduleCandidates.Load()
	out["search_cost_levels"] = m.costLevels.Load()
	out["search_inner_searches"] = m.innerSearches.Load()
	// The Prometheus-only derived values mirror into the expvar surface
	// so /debug/vars and /metrics never disagree: the hit ratio (same
	// hits+misses > 0 gate) and the cumulative histogram buckets.
	if hits, misses := m.cacheHits.Load(), m.cacheMisses.Load(); hits+misses > 0 {
		out["cache_hit_ratio"] = float64(hits) / float64(hits+misses)
	}
	if m.cacheStats != nil {
		entries, evictions, bytes := m.cacheStats()
		out["cache_entries"] = entries
		out["cache_evictions"] = evictions
		out["cache_bytes_estimate"] = bytes
	}
	if m.clustered {
		out["peer_forward_hit"] = m.peerForwardHit.Load()
		out["peer_forward_miss"] = m.peerForwardMiss.Load()
		out["peer_forward_shared"] = m.peerForwardShared.Load()
		out["peer_forward_error"] = m.peerForwardErrors.Load()
		out["peer_served_hit"] = m.peerServedHit.Load()
		out["peer_served_miss"] = m.peerServedMiss.Load()
		out["peer_served_shared"] = m.peerServedShared.Load()
		out["peer_fills_sent"] = m.peerFillsSent.Load()
		out["peer_fills_received"] = m.peerFillsRecv.Load()
		out["peer_fills_rejected"] = m.peerFillsRejected.Load()
		out["peer_fills_send_error"] = m.peerFillSendErrs.Load()
	}
	out["search_latency_buckets"] = cumulativeBuckets(&m.latCounts)
	// Exemplars mirror the /metrics bucket suffixes: always present so
	// the surface shape is stable, empty until a traced search lands.
	exemplars := map[string]any{}
	for _, ex := range m.exemplars() {
		exemplars[ex.Bucket] = map[string]any{
			"trace_id": ex.TraceID,
			"value_s":  ex.Value,
			"unix_ms":  ex.UnixMS,
		}
	}
	out["search_latency_exemplars"] = exemplars
	for stage := 0; stage < numStages; stage++ {
		out["stage_"+stageNames[stage]+"_count"] = m.stageCount[stage].Load()
		out["stage_"+stageNames[stage]+"_sum_s"] = float64(m.stageSumNs[stage].Load()) / 1e9
		out["stage_"+stageNames[stage]+"_buckets"] = cumulativeBuckets(&m.stageCounts[stage])
	}
	if m.traceCounters != nil {
		spans, dropped, finished := m.traceCounters()
		out["trace_spans"] = spans
		out["trace_spans_dropped"] = dropped
		out["traces"] = finished
	}
	if m.jobStats != nil {
		st := m.jobStats()
		out["jobs_submitted"] = st.Submitted
		out["jobs_deduped"] = st.Deduped
		out["jobs_rejected"] = st.Rejected
		out["jobs_done"] = st.Done
		out["jobs_failed"] = st.Failed
		out["jobs_cancelled"] = st.Cancelled
		out["jobs_resumed"] = st.Resumed
		out["jobs_requeued"] = st.Requeued
		out["jobs_queued"] = st.Queued
		out["jobs_running"] = st.Running
		out["jobs_forwarded"] = m.jobsForwarded.Load()
	}
	if m.sloStats != nil {
		snap := m.sloStats()
		burns := map[string]float64{}
		budget := map[string]float64{}
		breached := map[string]bool{}
		breaches := map[string]int64{}
		captures := map[string]int64{}
		for _, ob := range snap.Objectives {
			for _, wb := range ob.Burn {
				burns[ob.Name+"/"+wb.Window] = wb.Burn
			}
			budget[ob.Name] = ob.BudgetRemaining
			breached[ob.Name] = ob.Breached
			breaches[ob.Name] = ob.Breaches
			captures[ob.Name] = ob.Captures
		}
		out["slo_burn_rates"] = burns
		out["slo_budget_remaining"] = budget
		out["slo_breached"] = breached
		out["slo_breaches"] = breaches
		out["slo_captures"] = captures
	}
	if m.tenantStats != nil {
		requests := map[string]int64{}
		hits := map[string]int64{}
		searchMS := map[string]int64{}
		rejections := map[string]int64{}
		for _, t := range m.tenantStats() {
			requests[t.Tenant] = t.Requests
			hits[t.Tenant] = t.CacheHits
			searchMS[t.Tenant] = t.SearchMillis
			rejections[t.Tenant] = t.QueueRejections
		}
		out["tenant_requests"] = requests
		out["tenant_cache_hits"] = hits
		out["tenant_search_ms"] = searchMS
		out["tenant_queue_rejections"] = rejections
	}
	return out
}

// cumulativeBuckets renders one histogram's counts with the same
// cumulative le-keyed semantics the Prometheus exposition uses.
func cumulativeBuckets(counts *[numLatencyBuckets + 1]atomic.Int64) map[string]int64 {
	out := make(map[string]int64, numLatencyBuckets+1)
	var cum int64
	for i, ub := range latencyBuckets {
		cum += counts[i].Load()
		out[strconv.FormatFloat(ub, 'g', -1, 64)] = cum
	}
	cum += counts[numLatencyBuckets].Load()
	out["+Inf"] = cum
	return out
}
