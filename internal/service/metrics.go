package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the search-latency
// histogram, log-spaced from "cache-adjacent" to "deep search". An
// implicit +Inf bucket catches the rest.
var latencyBuckets = [numLatencyBuckets]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

const numLatencyBuckets = 7

// metrics aggregates the service counters. All fields are atomics so
// the hot request path never takes a lock for observability.
type metrics struct {
	mapRequests      atomic.Int64
	conflictRequests atomic.Int64
	simulateRequests atomic.Int64
	verifyRequests   atomic.Int64

	verifyCacheHits   atomic.Int64
	verifyCacheMisses atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	searches    atomic.Int64 // actual joint searches executed
	deduped     atomic.Int64 // requests that joined an in-progress flight

	rejected atomic.Int64 // admission-control rejections (429)
	timeouts atomic.Int64 // requests ended by deadline/cancellation
	failures atomic.Int64 // internal errors (500)

	inflight atomic.Int64 // searches holding a pool slot right now
	queued   atomic.Int64 // requests waiting for a slot right now

	latCounts [numLatencyBuckets + 1]atomic.Int64
	latSumNs  atomic.Int64
	latCount  atomic.Int64
}

// observeSearch records one search latency in the histogram.
func (m *metrics) observeSearch(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	m.latCounts[i].Add(1)
	m.latSumNs.Add(d.Nanoseconds())
	m.latCount.Add(1)
}

// WritePrometheus renders the counters in the Prometheus text
// exposition format (the GET /metrics payload).
func (m *metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP mapserve_requests_total Requests received, by endpoint.\n# TYPE mapserve_requests_total counter\n")
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"map\"} %d\n", m.mapRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"conflict\"} %d\n", m.conflictRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"simulate\"} %d\n", m.simulateRequests.Load())
	fmt.Fprintf(w, "mapserve_requests_total{endpoint=\"verify\"} %d\n", m.verifyRequests.Load())
	counter("mapserve_cache_hits_total", "Map requests answered from the canonical result cache.", m.cacheHits.Load())
	counter("mapserve_cache_misses_total", "Map requests that required a search.", m.cacheMisses.Load())
	counter("mapserve_verify_cache_hits_total", "Verify requests answered from the canonical certificate cache.", m.verifyCacheHits.Load())
	counter("mapserve_verify_cache_misses_total", "Verify requests that ran the certification engine.", m.verifyCacheMisses.Load())
	counter("mapserve_searches_total", "Joint (S, Pi) searches actually executed.", m.searches.Load())
	counter("mapserve_singleflight_deduped_total", "Map requests that joined an identical in-progress search.", m.deduped.Load())
	counter("mapserve_rejected_total", "Requests rejected by admission control.", m.rejected.Load())
	counter("mapserve_timeouts_total", "Requests ended by deadline or cancellation.", m.timeouts.Load())
	counter("mapserve_failures_total", "Requests failed with an internal error.", m.failures.Load())
	gauge("mapserve_inflight_searches", "Searches holding a worker-pool slot.", m.inflight.Load())
	gauge("mapserve_queued_requests", "Requests waiting for a worker-pool slot.", m.queued.Load())
	if hits, misses := m.cacheHits.Load(), m.cacheMisses.Load(); hits+misses > 0 {
		fmt.Fprintf(w, "# HELP mapserve_cache_hit_ratio Cache hits over cacheable map requests.\n# TYPE mapserve_cache_hit_ratio gauge\nmapserve_cache_hit_ratio %.6f\n",
			float64(hits)/float64(hits+misses))
	}
	fmt.Fprintf(w, "# HELP mapserve_search_latency_seconds Joint search wall time.\n# TYPE mapserve_search_latency_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i].Load()
		fmt.Fprintf(w, "mapserve_search_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "mapserve_search_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "mapserve_search_latency_seconds_sum %.9f\n", float64(m.latSumNs.Load())/1e9)
	fmt.Fprintf(w, "mapserve_search_latency_seconds_count %d\n", m.latCount.Load())
}

// Snapshot returns the counters as a flat map — the expvar surface
// published by cmd/mapserve.
func (m *metrics) Snapshot() map[string]any {
	return map[string]any{
		"map_requests":         m.mapRequests.Load(),
		"conflict_requests":    m.conflictRequests.Load(),
		"simulate_requests":    m.simulateRequests.Load(),
		"verify_requests":      m.verifyRequests.Load(),
		"cache_hits":           m.cacheHits.Load(),
		"cache_misses":         m.cacheMisses.Load(),
		"verify_cache_hits":    m.verifyCacheHits.Load(),
		"verify_cache_misses":  m.verifyCacheMisses.Load(),
		"searches":             m.searches.Load(),
		"singleflight_deduped": m.deduped.Load(),
		"rejected":             m.rejected.Load(),
		"timeouts":             m.timeouts.Load(),
		"failures":             m.failures.Load(),
		"inflight_searches":    m.inflight.Load(),
		"queued_requests":      m.queued.Load(),
		"search_latency_count": m.latCount.Load(),
		"search_latency_sum_s": float64(m.latSumNs.Load()) / 1e9,
	}
}
