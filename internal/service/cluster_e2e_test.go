package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lodim/internal/cluster"
	"lodim/internal/jobs"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// The third axis-permuted restatement of e2eBody, under σ = (1,2,0).
// Together with e2eBody and e2ePerm this gives one distinct wire body
// per node of a 3-node cluster, all canonicalizing to one problem.
const e2ePerm2 = `{"bounds":[3,4,2],"dependencies":[[0,0,1],[1,0,1],[1,1,0]],"dims":1}`

// testCluster is an n-node mapserve cluster on loopback listeners.
// Ports are bound before the services exist so every node is built
// with the full membership.
type testCluster struct {
	members []cluster.Member
	svcs    []*Service
	srvs    []*httptest.Server
}

func newTestCluster(t *testing.T, n int, mods ...func(i int, cfg *Config)) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	tc := &testCluster{members: make([]cluster.Member, n)}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tc.members[i] = cluster.Member{ID: fmt.Sprintf("node%d", i), URL: "http://" + ln.Addr().String()}
	}
	for i := 0; i < n; i++ {
		cfg := Config{
			Pool:          2,
			SearchWorkers: 1,
			Cluster:       &ClusterConfig{Self: tc.members[i], Peers: tc.members},
		}
		for _, mod := range mods {
			mod(i, &cfg)
		}
		svc := New(cfg)
		srv := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: NewHandler(svc)}}
		srv.Start()
		tc.svcs = append(tc.svcs, svc)
		tc.srvs = append(tc.srvs, srv)
	}
	t.Cleanup(func() {
		for _, srv := range tc.srvs {
			srv.Close()
		}
		for _, svc := range tc.svcs {
			svc.Close()
		}
	})
	return tc
}

// ownerIndex resolves which node owns the canonical problem a request
// body describes.
func (tc *testCluster) ownerIndex(t *testing.T, body string) int {
	t.Helper()
	var req MapRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	algo, dims, err := validateMapRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	key := mapCacheKey(Canonicalize(algo).Key, dims, &req)
	owner := tc.svcs[0].clu.ring.Owner(key)
	for i, m := range tc.members {
		if m.ID == owner.ID {
			return i
		}
	}
	t.Fatalf("owner %q is not a member", owner.ID)
	return -1
}

// totalSearches sums the search counter across every node.
func (tc *testCluster) totalSearches() int64 {
	var n int64
	for _, svc := range tc.svcs {
		n += svc.met.searches.Load()
	}
	return n
}

// gateSearches replaces every node's search with a gated wrapper and
// returns the gate plus a counter of entered searches.
func (tc *testCluster) gateSearches() (gate chan struct{}, entered *atomic.Int64) {
	gate = make(chan struct{})
	entered = &atomic.Int64{}
	for _, svc := range tc.svcs {
		real := svc.searchJoint
		svc.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
			entered.Add(1)
			<-gate
			return real(ctx, algo, dims, opts)
		}
	}
	return gate, entered
}

// TestClusterE2EDistributedSingleflight: three clients post permuted
// restatements of one problem, each to a different node, concurrently.
// Exactly one search runs cluster-wide, every body is byte-identical,
// and the cache headers expose who served locally versus via a peer.
func TestClusterE2EDistributedSingleflight(t *testing.T) {
	tc := newTestCluster(t, 3)
	gate, entered := tc.gateSearches()

	// The owner gets the problem's original statement; the two
	// non-owners both get the same permuted restatement — responses are
	// rendered in request coordinates, so byte-identity is only
	// meaningful between identical requests.
	ownerIdx := tc.ownerIndex(t, e2eBody)
	owner := tc.svcs[ownerIdx]
	bodies := make([]string, 3)
	for i := range bodies {
		if i == ownerIdx {
			bodies[i] = e2eBody
		} else {
			bodies[i] = e2ePerm
		}
	}

	type reply struct {
		node   int
		status int
		cache  string
		body   []byte
	}
	replies := make(chan reply, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			status, hdr, body := postJSON(t, tc.srvs[i].URL+"/v1/map", b)
			replies <- reply{i, status, hdr.Get("X-Mapserve-Cache"), body}
		}(i, b)
	}
	// One search must be open and both non-owner requests must have
	// joined the owner's flight (as peer-lookup followers) before the
	// gate lifts: the dedup is then provably concurrent, not sequenced.
	waitCounter(t, entered, 1)
	waitCounter(t, &owner.met.deduped, 2)
	close(gate)
	wg.Wait()
	close(replies)

	var got []reply
	for r := range replies {
		if r.status != 200 {
			t.Fatalf("node %d: status %d (%s)", r.node, r.status, r.body)
		}
		got = append(got, r)
	}
	if n := tc.totalSearches(); n != 1 {
		t.Errorf("cluster-wide searches = %d, want exactly 1", n)
	}
	if n := entered.Load(); n != 1 {
		t.Errorf("search bodies entered = %d, want exactly 1", n)
	}
	var followers []reply
	var invariants []MapResponse
	for _, r := range got {
		var out MapResponse
		if err := json.Unmarshal(r.body, &out); err != nil {
			t.Fatal(err)
		}
		invariants = append(invariants, out)
		if r.node == ownerIdx {
			if r.cache != "miss" && r.cache != "shared" {
				t.Errorf("owner node %d cache = %q, want miss or shared", r.node, r.cache)
			}
		} else {
			followers = append(followers, r)
			if r.cache != "peer_miss" && r.cache != "peer_shared" {
				t.Errorf("non-owner node %d cache = %q, want peer_miss or peer_shared", r.node, r.cache)
			}
		}
	}
	// The two identical follower requests must get byte-identical
	// bodies even though different nodes rendered them.
	if len(followers) != 2 {
		t.Fatalf("followers = %d, want 2", len(followers))
	}
	if !bytes.Equal(followers[0].body, followers[1].body) {
		t.Errorf("follower bodies differ between node %d and node %d:\n%s\n%s",
			followers[0].node, followers[1].node, followers[0].body, followers[1].body)
	}
	// Every answer shares the canonical key and all invariant figures.
	for _, out := range invariants[1:] {
		if out.CanonicalKey != invariants[0].CanonicalKey {
			t.Errorf("canonical keys differ: %q vs %q", out.CanonicalKey, invariants[0].CanonicalKey)
		}
		if out.TotalTime != invariants[0].TotalTime || out.Processors != invariants[0].Processors ||
			out.WireLength != invariants[0].WireLength || out.Cost != invariants[0].Cost {
			t.Errorf("invariants differ across nodes: %+v vs %+v", out, invariants[0])
		}
	}
}

// TestClusterE2EPeerCacheFill: a forwarded answer is cached on the
// forwarding node, so the node answers repeats locally — the aggregate
// hit ratio rises above what any single node's cache could give.
func TestClusterE2EPeerCacheFill(t *testing.T) {
	tc := newTestCluster(t, 3)
	ownerIdx := tc.ownerIndex(t, e2eBody)
	follower := (ownerIdx + 1) % 3

	// Cold: the non-owner forwards, the owner searches once.
	status, hdr, first := postJSON(t, tc.srvs[follower].URL+"/v1/map", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "peer_miss" {
		t.Fatalf("cold forward: %d %q (%s)", status, hdr.Get("X-Mapserve-Cache"), first)
	}
	if n := tc.totalSearches(); n != 1 {
		t.Fatalf("searches after cold forward = %d, want 1", n)
	}

	// Warm: the forwarding node now answers from its own cache — no
	// peer hop, no search — with a byte-identical body.
	status, hdr, second := postJSON(t, tc.srvs[follower].URL+"/v1/map", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("warm repeat: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Errorf("filled body differs from forwarded body:\n%s\n%s", first, second)
	}

	// A permuted restatement hits the same filled entry.
	status, hdr, _ = postJSON(t, tc.srvs[follower].URL+"/v1/map", e2ePerm)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("permuted warm repeat: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}

	// The owner kept its own copy too (it served the lookup).
	status, hdr, _ = postJSON(t, tc.srvs[ownerIdx].URL+"/v1/map", e2ePerm2)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("owner local: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if n := tc.totalSearches(); n != 1 {
		t.Errorf("searches after three requests = %d, want 1 (fill + owner cache)", n)
	}

	// The third node still misses locally and forwards: peer_hit now,
	// because the owner holds the result.
	third := (ownerIdx + 2) % 3
	status, hdr, thirdBody := postJSON(t, tc.srvs[third].URL+"/v1/map", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "peer_hit" {
		t.Fatalf("third node: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if !bytes.Equal(first, thirdBody) {
		t.Errorf("peer-hit body differs:\n%s\n%s", first, thirdBody)
	}
	if n := tc.totalSearches(); n != 1 {
		t.Errorf("searches after peer hit = %d, want 1", n)
	}
}

// TestClusterE2EPeerDeathFallback: when a problem's owner dies
// mid-operation, a non-owner degrades to a local search and still
// answers; the dead peer is marked unhealthy in /v1/status.
func TestClusterE2EPeerDeathFallback(t *testing.T) {
	tc := newTestCluster(t, 3)
	ownerIdx := tc.ownerIndex(t, e2eBody)
	survivor := (ownerIdx + 1) % 3

	tc.srvs[ownerIdx].Close()

	status, hdr, body := postJSON(t, tc.srvs[survivor].URL+"/v1/map", e2eBody)
	if status != 200 {
		t.Fatalf("survivor request: %d (%s)", status, body)
	}
	if got := hdr.Get("X-Mapserve-Cache"); got != "miss" {
		t.Errorf("cache = %q, want miss (local search fallback)", got)
	}
	svc := tc.svcs[survivor]
	if n := svc.met.searches.Load(); n != 1 {
		t.Errorf("survivor searches = %d, want 1", n)
	}
	if n := svc.met.peerForwardErrors.Load(); n != 1 {
		t.Errorf("peer forward errors = %d, want 1", n)
	}

	// The survivor answers repeats from its cache even with the owner
	// still down.
	status, hdr, _ = postJSON(t, tc.srvs[survivor].URL+"/v1/map", e2ePerm)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Errorf("repeat after fallback: %d %q, want 200 hit", status, hdr.Get("X-Mapserve-Cache"))
	}

	// Health surfaces the death: the owner shows unhealthy in the
	// survivor's cluster status.
	st := svc.Status()
	if st.Cluster == nil {
		t.Fatal("cluster status missing")
	}
	found := false
	for _, p := range st.Cluster.Peers {
		if p.ID == tc.members[ownerIdx].ID {
			found = true
			if p.Healthy {
				t.Errorf("dead owner %s still marked healthy", p.ID)
			}
		}
	}
	if !found {
		t.Errorf("dead owner %s absent from peer status %+v", tc.members[ownerIdx].ID, st.Cluster.Peers)
	}
}

// TestClusterE2EHopHeader: forwarded peer calls carry the hop header;
// a request claiming more hops than the protocol allows is refused
// with 508 before any work happens, and a malformed count is a 400.
func TestClusterE2EHopHeader(t *testing.T) {
	tc := newTestCluster(t, 2)
	lreq := `{"problem":{"key":"x","bounds":[2,2,2],"dependencies":[[1,0,0],[0,1,0],[0,0,1]],"dims":1}}`

	for _, c := range []struct {
		hop  string
		want int
	}{
		{"2", http.StatusLoopDetected},
		{"junk", http.StatusBadRequest},
		{"-1", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest("POST", tc.srvs[0].URL+cluster.LookupPath, strings.NewReader(lreq))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(cluster.HopHeader, c.hop)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("hop %q: status %d, want %d", c.hop, resp.StatusCode, c.want)
		}
	}
}

// TestClusterE2EFillValidation: a peer fill carrying a tampered result
// is rejected — the receiving node revalidates before caching.
func TestClusterE2EFillValidation(t *testing.T) {
	tc := newTestCluster(t, 2)
	ownerIdx := tc.ownerIndex(t, e2eBody)
	other := 1 - ownerIdx

	// Obtain a genuine wire result by asking the owner directly, then
	// lifting the cached canonical result it just computed. Going
	// through the owner keeps the other node's search count at zero.
	status, _, body := postJSON(t, tc.srvs[ownerIdx].URL+"/v1/map", e2eBody)
	if status != 200 {
		t.Fatalf("seed request: %d (%s)", status, body)
	}

	var req MapRequest
	if err := json.Unmarshal([]byte(e2eBody), &req); err != nil {
		t.Fatal(err)
	}
	algo, dims, err := validateMapRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	canon := Canonicalize(algo)
	key := mapCacheKey(canon.Key, dims, &req)
	prob := clusterProblem(key, canon, dims, &req)
	cached, ok := tc.svcs[ownerIdx].cache.Get(key)
	if !ok {
		t.Fatal("seed result missing from node 0's cache")
	}

	fill := func(t *testing.T, res cluster.WireResult, wantStored bool, wantStatus int) {
		t.Helper()
		freq, _ := json.Marshal(&cluster.FillRequest{Problem: prob, Result: res})
		status, _, body := postJSON(t, tc.srvs[other].URL+cluster.FillPath, string(freq))
		if status != wantStatus {
			t.Fatalf("fill status = %d, want %d (%s)", status, wantStatus, body)
		}
		if wantStatus != 200 {
			return
		}
		var fresp cluster.FillResponse
		if err := json.Unmarshal(body, &fresp); err != nil {
			t.Fatal(err)
		}
		if fresp.Stored != wantStored {
			t.Errorf("stored = %v, want %v", fresp.Stored, wantStored)
		}
	}

	// A lying total time must be refused: the receiver recomputes the
	// schedule figure from Π and the bounds.
	genuine := *wireFromResult(cached.(*schedule.JointResult))
	bogus := genuine
	bogus.Time = genuine.Time + 1
	fill(t, bogus, false, http.StatusBadRequest)
	if n := tc.svcs[other].met.peerFillsRejected.Load(); n != 1 {
		t.Errorf("rejected fills = %d, want 1", n)
	}

	// The genuine result is accepted and cached: the next local request
	// is a hit with zero searches on node 1.
	fill(t, genuine, true, http.StatusOK)
	status, hdr, _ := postJSON(t, tc.srvs[other].URL+"/v1/map", e2ePerm)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Errorf("after fill: %d %q, want 200 hit", status, hdr.Get("X-Mapserve-Cache"))
	}
	if n := tc.svcs[other].met.searches.Load(); n != 0 {
		t.Errorf("non-owner searches = %d, want 0 (the fill preloaded it)", n)
	}
}

// TestClusterE2EJobRouting: a job submitted to a non-owner node is
// proxied to the ring owner of its job ID and lands there exactly
// once; status, result, and cancel requests from any node reach the
// same job; the replayed result matches the synchronous response.
func TestClusterE2EJobRouting(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Jobs = &JobsConfig{Dir: t.TempDir()}
	})

	// Resolve the ring owner of the job's ID (not of the cache key —
	// job routing hashes "job|<id>").
	var mreq MapRequest
	if err := json.Unmarshal([]byte(e2eBody), &mreq); err != nil {
		t.Fatal(err)
	}
	algo, dims, err := validateMapRequest(&mreq)
	if err != nil {
		t.Fatal(err)
	}
	id := jobs.ID(JobKindMap, mapCacheKey(Canonicalize(algo).Key, dims, &mreq))
	ownerMem := tc.svcs[0].clu.ring.Owner("job|" + id)
	owner := -1
	for i, m := range tc.members {
		if m.ID == ownerMem.ID {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatalf("owner %q is not a member", ownerMem.ID)
	}
	submitter := (owner + 1) % 3
	third := (owner + 2) % 3

	status, _, body := postJSON(t, tc.srvs[submitter].URL+"/v1/jobs", `{"map":`+e2eBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit via non-owner: status %d: %s", status, body)
	}
	jr := decodeJobResponse(t, body)
	if jr.ID != id {
		t.Fatalf("submitted job ID %s, want %s", jr.ID, id)
	}

	// The job lives on the owner and nowhere else.
	if _, ok := tc.svcs[owner].jobsMgr.Get(id); !ok {
		t.Fatal("job not on the ring owner")
	}
	for _, i := range []int{submitter, third} {
		if _, ok := tc.svcs[i].jobsMgr.Get(id); ok {
			t.Fatalf("job also landed on node %d", i)
		}
		if st := tc.svcs[i].JobStats(); st.Submitted != 0 {
			t.Fatalf("node %d stats %+v, want no submissions", i, st)
		}
	}
	if st := tc.svcs[owner].JobStats(); st.Submitted != 1 {
		t.Fatalf("owner stats %+v, want Submitted=1", st)
	}
	if n := tc.svcs[submitter].met.jobsForwarded.Load(); n != 1 {
		t.Fatalf("submitter forwarded %d job requests, want 1", n)
	}

	// Status polling through the third node is forwarded to the owner.
	final := waitJobHTTP(t, tc.srvs[third].URL, id, jobs.StateDone)
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", final.Attempts)
	}
	if n := tc.svcs[third].met.jobsForwarded.Load(); n == 0 {
		t.Fatal("third node answered status without forwarding")
	}

	// The result replayed through a non-owner equals the synchronous
	// response computed on the owner.
	_, _, jobResult := httpReq(t, http.MethodGet, tc.srvs[third].URL+"/v1/jobs/"+id+"/result", "")
	status, _, syncBody := postJSON(t, tc.srvs[owner].URL+"/v1/map", e2eBody)
	if status != http.StatusOK {
		t.Fatalf("sync map status %d", status)
	}
	if string(jobResult) != string(syncBody) {
		t.Fatalf("cluster job result differs from synchronous response:\njob:  %s\nsync: %s", jobResult, syncBody)
	}

	// A duplicate submission through the other non-owner dedups on the
	// owner's job.
	status, _, body = postJSON(t, tc.srvs[third].URL+"/v1/jobs", `{"map":`+e2ePerm+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("dup submit status %d: %s", status, body)
	}
	if dup := decodeJobResponse(t, body); dup.ID != id || !dup.Deduped {
		t.Fatalf("dup submit got %+v, want deduped job %s", dup, id)
	}
}
