package service

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// maxBatchItems bounds one batch request. The ceiling exists so a
// single request cannot monopolize the decode path or produce an
// unbounded response; corpora larger than this paginate trivially.
const maxBatchItems = 256

// BatchRequest carries many map queries in one HTTP request. Items
// share the request's admission slot count — each item still passes the
// worker-pool admission individually, so a batch cannot jump the queue,
// but the per-request overheads (connection, decode, log line) are paid
// once.
type BatchRequest struct {
	Items []MapRequest `json:"items"`
}

// BatchItemResult is one item's outcome. Exactly one of Response or
// Error is set; Status mirrors what the item would have received as a
// standalone /v1/map call, and RetryAfterMS carries the same pacing
// hint the Retry-After header would.
type BatchItemResult struct {
	Index        int          `json:"index"`
	Status       int          `json:"status"`
	Cache        CacheStatus  `json:"cache,omitempty"`
	DurationMS   float64      `json:"duration_ms"`
	RetryAfterMS int64        `json:"retry_after_ms,omitempty"`
	Response     *MapResponse `json:"response,omitempty"`
	Error        string       `json:"error,omitempty"`
}

// BatchResponse summarizes the batch: per-item results in input order
// plus aggregate counts and wall time.
type BatchResponse struct {
	Items      []BatchItemResult `json:"items"`
	OK         int               `json:"ok"`
	Failed     int               `json:"failed"`
	DurationMS float64           `json:"duration_ms"`
}

// Batch answers every item of a batch request, fanning out across at
// most the worker-pool width. Items run through the full Map path —
// cache, singleflight, cluster forwarding, admission — so a batch of
// permuted duplicates still costs one search, and items beyond the
// pool+queue budget fail individually with 429 rather than failing the
// whole batch.
func (s *Service) Batch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()
	if len(req.Items) == 0 {
		return nil, badRequest("service: batch carries no items")
	}
	if len(req.Items) > maxBatchItems {
		return nil, badRequest("service: batch carries %d items, the limit is %d", len(req.Items), maxBatchItems)
	}

	start := time.Now()
	resp := &BatchResponse{Items: make([]BatchItemResult, len(req.Items))}
	// Fan-out matches the pool width: wider would only grow the
	// admission queue (risking self-inflicted 429s on large batches),
	// narrower would idle workers on cache-heavy corpora.
	workers := s.cfg.Pool
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				resp.Items[i] = s.batchItem(ctx, i, &req.Items[i])
			}
		}()
	}
	for i := range req.Items {
		next <- i
	}
	close(next)
	wg.Wait()

	for i := range resp.Items {
		if resp.Items[i].Status == http.StatusOK {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	resp.DurationMS = float64(time.Since(start).Nanoseconds()) / 1e6
	return resp, nil
}

// batchItem runs one item through Map under its own clamped deadline.
func (s *Service) batchItem(ctx context.Context, i int, item *MapRequest) BatchItemResult {
	itemStart := time.Now()
	ictx, cancel := context.WithTimeout(ctx, s.EffectiveTimeout(item.TimeoutMS))
	defer cancel()
	out, cacheStatus, err := s.Map(ictx, item)
	res := BatchItemResult{
		Index:      i,
		Cache:      cacheStatus,
		DurationMS: float64(time.Since(itemStart).Nanoseconds()) / 1e6,
	}
	if err != nil {
		status, retryAfter := s.classifyError(err)
		res.Status = status
		res.Error = err.Error()
		// Milliseconds straight from the classified duration — not
		// reconstructed from the whole-second header rendering, which
		// would drop sub-second pacing (and turn a short hint into "no
		// hint" after truncating to 0 seconds).
		res.RetryAfterMS = retryAfter.Milliseconds()
		return res
	}
	res.Status = http.StatusOK
	res.Response = out
	return res
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	// No whole-batch deadline beyond the per-item ones: items already
	// clamp themselves, and a shared ceiling would make late items fail
	// for the sins of early slow ones.
	resp, err := s.Batch(r.Context(), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
