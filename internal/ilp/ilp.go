// Package ilp implements exact integer linear programming by branch and
// bound over the rational simplex of internal/lp.
//
// Two entry points exist:
//
//   - Solve: plain branch and bound with integrality required on a
//     chosen subset of the variables (all by default).
//   - SolveDisjunctive: the decomposition used throughout Section 5 and
//     the appendix of Shang & Fortes (1990). The conflict-freeness
//     constraint "∃i such that |f_i(Π)| ≥ μ_i + 1" is not convex, but it
//     is a finite disjunction of convex half-space systems; the paper
//     splits the feasible set into one convex subproblem per disjunct
//     (Equations 8.1 and 8.2) and takes the best optimum. When, as in
//     the paper's examples, every coefficient is 0 or ±1, all extreme
//     points of each subproblem are integral and the LP relaxation is
//     already integral; branch and bound then terminates at the root.
//
// All arithmetic is exact; optima and argmins are returned as rationals
// that are exact integers whenever integrality was requested.
package ilp

import (
	"errors"
	"fmt"

	"lodim/internal/lp"
	"lodim/internal/rat"
)

// Solution is the result of an integer solve.
type Solution struct {
	Status    lp.Status
	X         []rat.Rat
	Objective rat.Rat
	// Branch is the index of the winning disjunct for SolveDisjunctive,
	// -1 for plain Solve.
	Branch int
	// Nodes is the number of branch-and-bound nodes explored, summed
	// over disjuncts for SolveDisjunctive (useful for the ablation
	// benchmarks comparing formulations).
	Nodes int
}

// ErrDepth reports that branch and bound exceeded its node budget,
// which indicates an unbounded integer feasible region or a model far
// outside this package's intended scale.
var ErrDepth = errors.New("ilp: branch-and-bound node budget exceeded")

// maxNodes bounds the search. Mapping problems need single digits.
const maxNodes = 200000

// Solve minimizes p with the variables selected by integer required to
// take integral values. A nil integer slice requires integrality of all
// variables. The LP relaxation being unbounded is reported as
// lp.Unbounded (the integer problem is then unbounded or infeasible;
// distinguishing the two is not needed by this repository and is
// undecidable by bounding alone).
func Solve(p *lp.Problem, integer []bool) (*Solution, error) {
	if integer == nil {
		integer = make([]bool, p.NumVars)
		for i := range integer {
			integer[i] = true
		}
	}
	if len(integer) != p.NumVars {
		return nil, fmt.Errorf("ilp: integer mask has %d entries, want %d", len(integer), p.NumVars)
	}
	s := &solver{integer: integer}
	best, err := s.branch(p, nil)
	if err != nil {
		return nil, err
	}
	if best == nil {
		// No integral solution found anywhere in the tree.
		st := lp.Infeasible
		if s.sawUnbounded {
			st = lp.Unbounded
		}
		return &Solution{Status: st, Branch: -1, Nodes: s.nodes}, nil
	}
	return &Solution{Status: lp.Optimal, X: best.x, Objective: best.obj, Branch: -1, Nodes: s.nodes}, nil
}

type incumbent struct {
	x   []rat.Rat
	obj rat.Rat
}

type solver struct {
	integer      []bool
	nodes        int
	sawUnbounded bool
	best         *incumbent
}

// branch solves p plus the extra bound constraints, recursing on a
// fractional integral variable. It returns the solver-wide incumbent.
func (s *solver) branch(p *lp.Problem, extra []lp.Constraint) (*incumbent, error) {
	s.nodes++
	if s.nodes > maxNodes {
		return nil, ErrDepth
	}
	q := *p
	q.Constraints = append(append([]lp.Constraint{}, p.Constraints...), extra...)
	sol, err := q.Solve()
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return s.best, nil
	case lp.Unbounded:
		// An unbounded relaxation cannot be pruned by bounding; the
		// caller decides what to report if no incumbent ever appears.
		s.sawUnbounded = true
		return s.best, nil
	}
	// Bound: prune if the relaxation cannot beat the incumbent.
	if s.best != nil && s.best.obj.LessEq(sol.Objective) {
		return s.best, nil
	}
	// Find a fractional integral variable.
	frac := -1
	for j, isInt := range s.integer {
		if isInt && !sol.X[j].IsInt() {
			frac = j
			break
		}
	}
	if frac < 0 {
		if s.best == nil || sol.Objective.Less(s.best.obj) {
			s.best = &incumbent{x: sol.X, obj: sol.Objective}
		}
		return s.best, nil
	}
	fl := sol.X[frac].Floor()
	coeff := make([]rat.Rat, p.NumVars)
	coeff[frac] = rat.One()
	down := append(append([]lp.Constraint{}, extra...), lp.Constraint{Coeffs: coeff, Op: lp.LE, RHS: rat.FromInt(fl)})
	if _, err := s.branch(p, down); err != nil {
		return nil, err
	}
	up := append(append([]lp.Constraint{}, extra...), lp.Constraint{Coeffs: coeff, Op: lp.GE, RHS: rat.FromInt(fl + 1)})
	if _, err := s.branch(p, up); err != nil {
		return nil, err
	}
	return s.best, nil
}

// SolveDisjunctive minimizes the base problem subject to, additionally,
// at least one of the given constraint bundles holding (a disjunction
// of conjunctions). Each disjunct is solved as an independent (integer,
// when integer is non-nil or nil-all) program and the best optimum
// wins; ties keep the lowest branch index. This mirrors the paper's
// partition of the non-convex conflict-free solution space into convex
// subsets (appendix, Equations 8.1/8.2).
func SolveDisjunctive(base *lp.Problem, disjuncts [][]lp.Constraint, integer []bool) (*Solution, error) {
	if len(disjuncts) == 0 {
		return nil, errors.New("ilp: no disjuncts")
	}
	bestSol := &Solution{Status: lp.Infeasible, Branch: -1}
	sawUnbounded := false
	totalNodes := 0
	for b, extra := range disjuncts {
		sub := *base
		sub.Constraints = append(append([]lp.Constraint{}, base.Constraints...), extra...)
		sol, err := Solve(&sub, integer)
		if err != nil {
			return nil, fmt.Errorf("ilp: disjunct %d: %w", b, err)
		}
		totalNodes += sol.Nodes
		switch sol.Status {
		case lp.Unbounded:
			sawUnbounded = true
		case lp.Optimal:
			if bestSol.Status != lp.Optimal || sol.Objective.Less(bestSol.Objective) {
				bestSol = &Solution{Status: lp.Optimal, X: sol.X, Objective: sol.Objective, Branch: b}
			}
		}
	}
	bestSol.Nodes = totalNodes
	if bestSol.Status != lp.Optimal && sawUnbounded {
		bestSol.Status = lp.Unbounded
	}
	return bestSol, nil
}
