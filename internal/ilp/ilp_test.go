package ilp

import (
	"testing"

	"lodim/internal/lp"
	"lodim/internal/rat"
)

func ri(n int64) rat.Rat { return rat.FromInt(n) }
func rvec(ns ...int64) []rat.Rat {
	v := make([]rat.Rat, len(ns))
	for i, n := range ns {
		v[i] = rat.FromInt(n)
	}
	return v
}

// Knapsack-style: max 5x+4y s.t. 6x+5y <= 10, x,y >= 0 integer.
// LP optimum is fractional (x=5/3); integer optimum is x=0,y=2 (8) or
// x=1,y=0 (5)... check: 6+5=11 > 10 so (1,0) only 5; (0,2) gives 8.
func TestBranchAndBoundFractionalRoot(t *testing.T) {
	p := &lp.Problem{
		NumVars: 2,
		C:       rvec(-5, -4),
		Constraints: []lp.Constraint{
			{Coeffs: rvec(6, 5), Op: lp.LE, RHS: ri(10)},
		},
		Lower: []lp.Bound{lp.BoundAt(ri(0)), lp.BoundAt(ri(0))},
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Objective.Equal(ri(-8)) {
		t.Errorf("objective %v, want -8", sol.Objective)
	}
	if !sol.X[0].Equal(ri(0)) || !sol.X[1].Equal(ri(2)) {
		t.Errorf("x = %v, want [0 2]", sol.X)
	}
	if sol.Nodes < 2 {
		t.Errorf("expected branching, explored %d nodes", sol.Nodes)
	}
}

// Integral-vertex LP: branch and bound must stop at the root.
func TestIntegralRootNoBranching(t *testing.T) {
	p := &lp.Problem{
		NumVars: 2,
		C:       rvec(1, 1),
		Constraints: []lp.Constraint{
			{Coeffs: rvec(1, 1), Op: lp.GE, RHS: ri(3)},
		},
		Lower: []lp.Bound{lp.BoundAt(ri(0)), lp.BoundAt(ri(0))},
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || !sol.Objective.Equal(ri(3)) {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
	if sol.Nodes != 1 {
		t.Errorf("explored %d nodes, want 1 (integral root)", sol.Nodes)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 2x = 1 with x integer: LP feasible (x=1/2), IP infeasible.
	p := &lp.Problem{
		NumVars: 1,
		C:       rvec(1),
		Constraints: []lp.Constraint{
			{Coeffs: rvec(2), Op: lp.EQ, RHS: ri(1)},
		},
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

func TestMixedInteger(t *testing.T) {
	// min x+y s.t. 2x+2y >= 3; y integer, x continuous.
	// With y = 0: x = 3/2, obj 3/2. With y = 1: x = 1/2, obj 3/2.
	// Optimum 3/2 either way; check objective only.
	p := &lp.Problem{
		NumVars: 2,
		C:       rvec(1, 1),
		Constraints: []lp.Constraint{
			{Coeffs: rvec(2, 2), Op: lp.GE, RHS: ri(3)},
		},
		Lower: []lp.Bound{lp.BoundAt(ri(0)), lp.BoundAt(ri(0))},
	}
	sol, err := Solve(p, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Objective.Equal(rat.FromFrac(3, 2)) {
		t.Errorf("objective %v, want 3/2", sol.Objective)
	}
	if !sol.X[1].IsInt() {
		t.Errorf("integer variable fractional: %v", sol.X[1])
	}
}

func TestIntegerMaskLengthError(t *testing.T) {
	p := &lp.Problem{NumVars: 2, C: rvec(1, 1)}
	if _, err := Solve(p, []bool{true}); err == nil {
		t.Error("bad mask accepted")
	}
}

func TestUnboundedReported(t *testing.T) {
	p := &lp.Problem{
		NumVars:     1,
		C:           rvec(-1),
		Constraints: []lp.Constraint{{Coeffs: rvec(1), Op: lp.GE, RHS: ri(0)}},
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Unbounded {
		t.Errorf("status %v, want unbounded", sol.Status)
	}
}

// TestDisjunctivePaperMatmul reproduces the appendix solve of Example
// 5.1 exactly: minimize μ(π1+π2+π3) with π_i ≥ 1 and the disjunction
//
//	π2+π3 ≥ μ+1  ∨  π1+π3 ≥ μ+1  ∨  π1-π2 ≥ μ+1  ∨  π2-π1 ≥ μ+1
//
// For μ = 4 the optimum is 24 = μ(μ+2), attained by [1,4,1] (branch 0)
// and [4,1,1] (branch 1), matching the paper's Π2 and Π3.
func TestDisjunctivePaperMatmul(t *testing.T) {
	mu := int64(4)
	base := &lp.Problem{
		NumVars: 3,
		C:       rvec(mu, mu, mu),
		Lower:   []lp.Bound{lp.BoundAt(ri(1)), lp.BoundAt(ri(1)), lp.BoundAt(ri(1))},
	}
	disjuncts := [][]lp.Constraint{
		{{Coeffs: rvec(0, 1, 1), Op: lp.GE, RHS: ri(mu + 1)}},
		{{Coeffs: rvec(1, 0, 1), Op: lp.GE, RHS: ri(mu + 1)}},
		{{Coeffs: rvec(1, -1, 0), Op: lp.GE, RHS: ri(mu + 1)}},
		{{Coeffs: rvec(-1, 1, 0), Op: lp.GE, RHS: ri(mu + 1)}},
	}
	sol, err := SolveDisjunctive(base, disjuncts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if want := ri(mu * (mu + 2)); !sol.Objective.Equal(want) {
		t.Errorf("objective %v, want %v (= μ(μ+2))", sol.Objective, want)
	}
	if sol.Branch != 0 && sol.Branch != 1 {
		t.Errorf("winning branch %d, want 0 or 1", sol.Branch)
	}
	sum := rat.Sum(sol.X...)
	if !sum.Equal(ri(mu + 2)) {
		t.Errorf("Σπ = %v, want μ+2 = %d", sum, mu+2)
	}
}

func TestDisjunctiveInfeasibleBranchesSkipped(t *testing.T) {
	base := &lp.Problem{
		NumVars: 1,
		C:       rvec(1),
		Lower:   []lp.Bound{lp.BoundAt(ri(0))},
	}
	disjuncts := [][]lp.Constraint{
		{ // infeasible: x >= 5 and x <= 3
			{Coeffs: rvec(1), Op: lp.GE, RHS: ri(5)},
			{Coeffs: rvec(1), Op: lp.LE, RHS: ri(3)},
		},
		{ // feasible: x >= 2
			{Coeffs: rvec(1), Op: lp.GE, RHS: ri(2)},
		},
	}
	sol, err := SolveDisjunctive(base, disjuncts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || sol.Branch != 1 || !sol.Objective.Equal(ri(2)) {
		t.Errorf("got status %v branch %d obj %v", sol.Status, sol.Branch, sol.Objective)
	}
}

func TestDisjunctiveAllInfeasible(t *testing.T) {
	base := &lp.Problem{NumVars: 1, C: rvec(1), Lower: []lp.Bound{lp.BoundAt(ri(0))}}
	disjuncts := [][]lp.Constraint{
		{
			{Coeffs: rvec(1), Op: lp.GE, RHS: ri(5)},
			{Coeffs: rvec(1), Op: lp.LE, RHS: ri(3)},
		},
	}
	sol, err := SolveDisjunctive(base, disjuncts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

func TestDisjunctiveNoDisjunctsError(t *testing.T) {
	base := &lp.Problem{NumVars: 1, C: rvec(1)}
	if _, err := SolveDisjunctive(base, nil, nil); err == nil {
		t.Error("empty disjunction accepted")
	}
}

// Exhaustive cross-check: B&B optimum equals brute-force integer grid
// search over a box, for a batch of small random-ish models.
func TestAgainstBruteForce(t *testing.T) {
	models := []struct {
		c    []int64
		rows [][]int64 // a1 a2 rhs, meaning a1 x + a2 y <= rhs
	}{
		{[]int64{-3, -2}, [][]int64{{2, 1, 7}, {1, 3, 9}}},
		{[]int64{-1, -4}, [][]int64{{1, 2, 8}, {3, 1, 9}}},
		{[]int64{2, -5}, [][]int64{{1, 1, 6}, {-1, 2, 4}}},
		{[]int64{-7, -1}, [][]int64{{5, 2, 11}}},
	}
	for mi, m := range models {
		p := &lp.Problem{
			NumVars: 2,
			C:       rvec(m.c...),
			Lower:   []lp.Bound{lp.BoundAt(ri(0)), lp.BoundAt(ri(0))},
			Upper:   []lp.Bound{lp.BoundAt(ri(10)), lp.BoundAt(ri(10))},
		}
		for _, r := range m.rows {
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: rvec(r[0], r[1]), Op: lp.LE, RHS: ri(r[2])})
		}
		sol, err := Solve(p, nil)
		if err != nil {
			t.Fatalf("model %d: %v", mi, err)
		}
		// Brute force.
		bestObj := int64(1 << 60)
		found := false
		for x := int64(0); x <= 10; x++ {
			for y := int64(0); y <= 10; y++ {
				ok := true
				for _, r := range m.rows {
					if r[0]*x+r[1]*y > r[2] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				obj := m.c[0]*x + m.c[1]*y
				if !found || obj < bestObj {
					bestObj, found = obj, true
				}
			}
		}
		if !found {
			if sol.Status != lp.Infeasible {
				t.Errorf("model %d: brute force infeasible, solver says %v", mi, sol.Status)
			}
			continue
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("model %d: status %v", mi, sol.Status)
		}
		if !sol.Objective.Equal(ri(bestObj)) {
			t.Errorf("model %d: objective %v, brute force %d", mi, sol.Objective, bestObj)
		}
	}
}

func BenchmarkDisjunctiveMatmul(b *testing.B) {
	mu := int64(16)
	base := &lp.Problem{
		NumVars: 3,
		C:       rvec(mu, mu, mu),
		Lower:   []lp.Bound{lp.BoundAt(ri(1)), lp.BoundAt(ri(1)), lp.BoundAt(ri(1))},
	}
	disjuncts := [][]lp.Constraint{
		{{Coeffs: rvec(0, 1, 1), Op: lp.GE, RHS: ri(mu + 1)}},
		{{Coeffs: rvec(1, 0, 1), Op: lp.GE, RHS: ri(mu + 1)}},
		{{Coeffs: rvec(1, -1, 0), Op: lp.GE, RHS: ri(mu + 1)}},
		{{Coeffs: rvec(-1, 1, 0), Op: lp.GE, RHS: ri(mu + 1)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDisjunctive(base, disjuncts, nil); err != nil {
			b.Fatal(err)
		}
	}
}
