package intmat

import (
	"errors"
	"math/rand"
	"testing"
)

// TestHNFPaperExample42 reproduces Example 4.2: the Hermite normal form
// of the mapping matrix T of Equation 2.8,
//
//	T = [1 7 1 1]
//	    [1 7 1 0]
//
// must give TU = [L, 0] with a 2x2 nonsingular lower-triangular L, and
// the last two columns of U must span the null space containing the
// paper's conflict vectors γ1 = [0,1,-7,0] and γ2 = [7,-1,0,0].
func TestHNFPaperExample42(t *testing.T) {
	T := FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatalf("HermiteNormalForm: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	if h.NullityDim() != 2 {
		t.Fatalf("nullity = %d, want 2", h.NullityDim())
	}
	// Both paper conflict vectors must be integral combinations of the
	// null basis — equivalently, they must satisfy Tγ = 0 and have
	// integral coordinates β = Vγ with β1 = β2 = 0.
	V := h.V()
	for _, g := range []Vector{Vec(0, 1, -7, 0), Vec(7, -1, 0, 0), Vec(1, 0, -1, 0)} {
		if !T.MulVec(g).IsZero() {
			t.Errorf("Tγ != 0 for γ = %v", g)
		}
		beta := V.MulVec(g)
		if beta[0] != 0 || beta[1] != 0 {
			t.Errorf("β = Vγ = %v has non-zero leading entries for γ = %v", beta, g)
		}
	}
}

func TestHNFSquareUnimodularInput(t *testing.T) {
	// A square nonsingular input: H should be lower triangular with
	// |det H| = |det T|.
	T := FromRows(
		[]int64{2, 4, 4},
		[]int64{-6, 6, 12},
		[]int64{10, 4, 16},
	)
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatalf("HermiteNormalForm: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	dT, dH := T.Det(), h.H.Det()
	if dT != dH && dT != -dH {
		t.Errorf("|det H| = |%d| != |det T| = |%d|", dH, dT)
	}
	if h.NullityDim() != 0 {
		t.Errorf("nullity = %d, want 0", h.NullityDim())
	}
}

func TestHNFRankDeficient(t *testing.T) {
	T := FromRows(
		[]int64{1, 2, 3},
		[]int64{2, 4, 6},
	)
	if _, err := HermiteNormalForm(T); !errors.Is(err, ErrRankDeficient) {
		t.Errorf("err = %v, want ErrRankDeficient", err)
	}
	// More rows than columns is always rank deficient for this purpose.
	if _, err := HermiteNormalForm(New(3, 2)); !errors.Is(err, ErrRankDeficient) {
		t.Errorf("tall matrix err = %v, want ErrRankDeficient", err)
	}
}

func TestHNFZeroRow(t *testing.T) {
	T := FromRows(
		[]int64{0, 0, 0},
		[]int64{1, 2, 3},
	)
	if _, err := HermiteNormalForm(T); !errors.Is(err, ErrRankDeficient) {
		t.Errorf("err = %v, want ErrRankDeficient", err)
	}
}

func TestHNFSingleRow(t *testing.T) {
	T := FromRows([]int64{6, 10, 15})
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatalf("HermiteNormalForm: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	// The pivot must be gcd(6, 10, 15) = 1.
	if got := h.H.At(0, 0); got != 1 {
		t.Errorf("L[0][0] = %d, want gcd 1", got)
	}
	for _, b := range h.NullBasis() {
		if !T.MulVec(b).IsZero() {
			t.Errorf("null basis vector %v not annihilated", b)
		}
	}
}

func TestHNFPivotGCDOfRow(t *testing.T) {
	// For a 1×n matrix, the single pivot is exactly the gcd of the row.
	T := FromRows([]int64{12, 18, 30})
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.H.At(0, 0); got != 6 {
		t.Errorf("pivot = %d, want 6", got)
	}
}

func TestHNFNullBasisAnnihilated(t *testing.T) {
	T := FromRows(
		[]int64{1, 1, -1, 2},
		[]int64{3, 0, 1, -1},
	)
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatal(err)
	}
	basis := h.NullBasis()
	if len(basis) != 2 {
		t.Fatalf("basis size %d, want 2", len(basis))
	}
	for _, b := range basis {
		if !T.MulVec(b).IsZero() {
			t.Errorf("T·%v != 0", b)
		}
		if b.GCD() != 1 {
			t.Errorf("basis vector %v is not primitive", b)
		}
	}
}

// TestHNFRandom exercises the decomposition on random full-row-rank
// matrices and verifies every structural invariant, plus that V = U^{-1}
// and that the null basis is annihilated.
func TestHNFRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 0
	for trials < 500 {
		k := 1 + rng.Intn(4)
		n := k + rng.Intn(4)
		T := randMatrix(rng, k, n, 9)
		if T.Rank() < k {
			continue // skip rank-deficient draws; covered by dedicated tests
		}
		trials++
		h, err := HermiteNormalForm(T)
		if err != nil {
			t.Fatalf("HermiteNormalForm(%v): %v", T, err)
		}
		if err := h.Verify(); err != nil {
			t.Fatalf("Verify failed for\n%v\nH=\n%v\nU=\n%v\n%v", T, h.H, h.U, err)
		}
		if !h.U.Mul(h.V()).Equal(Identity(n)) {
			t.Fatalf("U·V != I for\n%v", T)
		}
		for _, b := range h.NullBasis() {
			if !T.MulVec(b).IsZero() {
				t.Fatalf("null basis not annihilated for\n%v", T)
			}
		}
	}
}

// TestHNFRankDeficientRandom verifies that random rank-deficient
// matrices are rejected.
func TestHNFRankDeficientRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		// Build a k×n matrix whose last row duplicates the first.
		k := 2 + rng.Intn(3)
		n := k + rng.Intn(3)
		T := randMatrix(rng, k, n, 5)
		T.SetRow(k-1, T.Row(0))
		if _, err := HermiteNormalForm(T); !errors.Is(err, ErrRankDeficient) {
			t.Fatalf("expected ErrRankDeficient for duplicated-row matrix\n%v, got %v", T, err)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3},
		{-7, 2, -4},
		{6, 3, 2},
		{-6, 3, -2},
		{0, 5, 0},
		{1, 7, 0},
		{-1, 7, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHNFLAccessor(t *testing.T) {
	T := FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatal(err)
	}
	L := h.L()
	if L.Rows() != 2 || L.Cols() != 2 {
		t.Fatalf("L shape %dx%d", L.Rows(), L.Cols())
	}
	if L.Det() == 0 {
		t.Error("L singular")
	}
	if L.At(0, 1) != 0 {
		t.Error("L not lower triangular")
	}
}

func BenchmarkHNF4x6(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mats := make([]*Matrix, 0, 64)
	for len(mats) < 64 {
		m := randMatrix(rng, 4, 6, 9)
		if m.Rank() == 4 {
			mats = append(mats, m)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HermiteNormalForm(mats[i%len(mats)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDet6x6(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := randMatrix(rng, 6, 6, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Det()
	}
}
