package intmat

import "math/big"

// bigMatrix is the arbitrary-precision working representation used
// internally by HermiteNormalForm. Only the handful of column
// operations the elimination needs are implemented.
type bigMatrix struct {
	rows, cols int
	a          []*big.Int
}

func newBigMatrix(m *Matrix) *bigMatrix {
	b := &bigMatrix{rows: m.rows, cols: m.cols, a: make([]*big.Int, m.rows*m.cols)}
	for i := range b.a {
		b.a[i] = big.NewInt(m.a[i])
	}
	return b
}

func newBigIdentity(n int) *bigMatrix {
	b := &bigMatrix{rows: n, cols: n, a: make([]*big.Int, n*n)}
	for i := range b.a {
		b.a[i] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		b.a[i*n+i].SetInt64(1)
	}
	return b
}

func (b *bigMatrix) at(i, j int) *big.Int { return b.a[i*b.cols+j] }

func (b *bigMatrix) swapCols(i, j int) {
	if i == j {
		return
	}
	for r := 0; r < b.rows; r++ {
		b.a[r*b.cols+i], b.a[r*b.cols+j] = b.a[r*b.cols+j], b.a[r*b.cols+i]
	}
}

func (b *bigMatrix) negCol(j int) {
	for r := 0; r < b.rows; r++ {
		b.a[r*b.cols+j].Neg(b.a[r*b.cols+j])
	}
}

// addColMultiple performs col_dst += c · col_src.
func (b *bigMatrix) addColMultiple(dst, src int, c *big.Int) {
	var t big.Int
	for r := 0; r < b.rows; r++ {
		t.Mul(c, b.a[r*b.cols+src])
		b.a[r*b.cols+dst].Add(b.a[r*b.cols+dst], &t)
	}
}

// combineCols applies the 2×2 column transform
//
//	[col_i, col_j] ← [x·col_i + y·col_j,  u·col_i + v·col_j].
func (b *bigMatrix) combineCols(i, j int, x, y, u, v *big.Int) {
	var t1, t2, ni, nj big.Int
	for r := 0; r < b.rows; r++ {
		ai, aj := b.a[r*b.cols+i], b.a[r*b.cols+j]
		t1.Mul(x, ai)
		t2.Mul(y, aj)
		ni.Add(&t1, &t2)
		t1.Mul(u, ai)
		t2.Mul(v, aj)
		nj.Add(&t1, &t2)
		ai.Set(&ni)
		aj.Set(&nj)
	}
}

// colDot returns the inner product of columns i and j.
func (b *bigMatrix) colDot(i, j int) *big.Int {
	s := new(big.Int)
	var t big.Int
	for r := 0; r < b.rows; r++ {
		t.Mul(b.a[r*b.cols+i], b.a[r*b.cols+j])
		s.Add(s, &t)
	}
	return s
}

// sizeReduce shrinks the entries of the multiplier U in place without
// changing H = T·U. Two degrees of freedom exist: (1) the trailing
// null-space columns k…n-1 (whose H columns are zero) may be combined
// among themselves by any unimodular transform, and (2) any integral
// multiple of a null column may be added to any other column, since
// T·(null column) = 0. We apply Gaussian-style pairwise size reduction
// to the null columns and then Babai-style rounding of the pivot
// columns against them. Without this step the pairwise gcd elimination
// can leave U with entries exponentially larger than necessary.
func (b *bigMatrix) sizeReduce(k int) {
	n := b.cols
	if k >= n {
		return
	}
	// Phase 1: pairwise reduction of the null columns until fixpoint
	// (bounded sweeps; each successful reduction strictly shrinks a norm).
	for sweep := 0; sweep < 64; sweep++ {
		changed := false
		for p := k; p < n; p++ {
			pp := b.colDot(p, p)
			if pp.Sign() == 0 {
				continue
			}
			for q := k; q < n; q++ {
				if p == q {
					continue
				}
				t := bigRoundDiv(b.colDot(q, p), pp)
				if t.Sign() != 0 {
					t.Neg(t)
					b.addColMultiple(q, p, t)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: reduce the pivot columns against the null lattice.
	for sweep := 0; sweep < 8; sweep++ {
		changed := false
		for p := k; p < n; p++ {
			pp := b.colDot(p, p)
			if pp.Sign() == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				t := bigRoundDiv(b.colDot(j, p), pp)
				if t.Sign() != 0 {
					t.Neg(t)
					b.addColMultiple(j, p, t)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// toMatrix converts back to an int64 Matrix, panicking with
// *OverflowError if any entry does not fit.
func (b *bigMatrix) toMatrix() *Matrix {
	m := New(b.rows, b.cols)
	for i, v := range b.a {
		if !v.IsInt64() {
			overflow("HNF result entry")
		}
		m.a[i] = v.Int64()
	}
	return m
}

// bigExtGCD returns g = gcd(a, b) > 0 and minimal Bézout coefficients
// x, y with a·x + b·y = g. Both a and b are expected non-zero by the
// single call site; minimality of x (|x| ≤ |b|/(2g) after reduction)
// keeps the unimodular column transforms — and therefore the entries of
// the multiplier U — as small as the algorithm allows.
func bigExtGCD(a, b *big.Int) (g, x, y *big.Int) {
	g, x, y = new(big.Int), new(big.Int), new(big.Int)
	g.GCD(x, y, new(big.Int).Abs(a), new(big.Int).Abs(b))
	if a.Sign() < 0 {
		x.Neg(x)
	}
	if b.Sign() < 0 {
		y.Neg(y)
	}
	// Reduce x modulo b/g to the least-absolute-value representative,
	// adjusting y to preserve the identity.
	bg := new(big.Int).Quo(b, g)
	ag := new(big.Int).Quo(a, g)
	if bg.Sign() != 0 {
		q := bigRoundDiv(x, bg)
		if q.Sign() != 0 {
			x.Sub(x, new(big.Int).Mul(q, bg))
			y.Add(y, new(big.Int).Mul(q, ag))
		}
	}
	return g, x, y
}

// bigFloorDiv returns ⌊a/d⌋ for d > 0.
func bigFloorDiv(a, d *big.Int) *big.Int {
	q := new(big.Int)
	m := new(big.Int)
	q.DivMod(a, d, m) // Euclidean: 0 ≤ m < |d|; with d > 0 this is floor division
	return q
}

// bigRoundDiv returns the integer nearest to a/d (ties toward zero).
func bigRoundDiv(a, d *big.Int) *big.Int {
	two := big.NewInt(2)
	ad := new(big.Int).Abs(d)
	half := new(big.Int).Quo(ad, two)
	num := new(big.Int)
	if a.Sign() >= 0 {
		num.Add(a, half)
	} else {
		num.Sub(a, half)
	}
	return new(big.Int).Quo(num, d)
}
