package intmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDetSmall(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want int64
	}{
		{New(0, 0), 1},
		{FromRows([]int64{7}), 7},
		{FromRows([]int64{1, 2}, []int64{3, 4}), -2},
		{Identity(5), 1},
		{FromRows([]int64{2, 0, 0}, []int64{0, 3, 0}, []int64{0, 0, 4}), 24},
		{FromRows([]int64{0, 1}, []int64{1, 0}), -1},
		{FromRows([]int64{1, 2, 3}, []int64{4, 5, 6}, []int64{7, 8, 9}), 0},
		// Needs a row swap because of the zero pivot.
		{FromRows([]int64{0, 2, 1}, []int64{1, 0, 0}, []int64{0, 0, 3}), -6},
	}
	for i, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("case %d: Det = %d, want %d", i, got, c.want)
		}
	}
}

func TestDetNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Det of non-square matrix did not panic")
		}
	}()
	New(2, 3).Det()
}

// Property: det is multiplicative for random small square matrices.
func TestDetMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		a, b := randMatrix(rng, n, n, 5), randMatrix(rng, n, n, 5)
		if got, want := a.Mul(b).Det(), a.Det()*b.Det(); got != want {
			t.Fatalf("det(AB) = %d, det(A)det(B) = %d\nA=\n%v\nB=\n%v", got, want, a, b)
		}
	}
}

// Property: det(mᵀ) = det(m).
func TestDetTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := randMatrix(rng, n, n, 6)
		if m.Det() != m.Transpose().Det() {
			t.Fatalf("det(m) != det(mᵀ) for\n%v", m)
		}
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want int
	}{
		{New(3, 3), 0},
		{Identity(4), 4},
		{FromRows([]int64{1, 2, 3}, []int64{2, 4, 6}), 1},
		{FromRows([]int64{1, 2, 3}, []int64{4, 5, 6}, []int64{7, 8, 9}), 2},
		{FromRows([]int64{1, 0, 0, 0}, []int64{0, 0, 1, 0}), 2},
		{New(0, 5), 0},
		{FromRows([]int64{0, 0}, []int64{0, 1}), 1},
	}
	for i, c := range cases {
		if got := c.m.Rank(); got != c.want {
			t.Errorf("case %d: Rank = %d, want %d", i, got, c.want)
		}
	}
}

func TestRankTransposeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r, c := 1+rng.Intn(4), 1+rng.Intn(5)
		m := randMatrix(rng, r, c, 4)
		if m.Rank() != m.Transpose().Rank() {
			t.Fatalf("rank(m) != rank(mᵀ) for\n%v", m)
		}
	}
}

func TestCofactorAndAdjugate(t *testing.T) {
	m := FromRows(
		[]int64{1, 2, 3},
		[]int64{0, 4, 5},
		[]int64{1, 0, 6},
	)
	// Fundamental identity: m · adj(m) = det(m) · I.
	adj := m.Adjugate()
	want := Identity(3).Scale(m.Det())
	if got := m.Mul(adj); !got.Equal(want) {
		t.Errorf("m·adj(m) =\n%v\nwant\n%v", got, want)
	}
	if got := adj.Mul(m); !got.Equal(want) {
		t.Errorf("adj(m)·m =\n%v\nwant\n%v", got, want)
	}
	// Spot-check one cofactor by hand: C(0,0) = det([[4,5],[0,6]]) = 24.
	if got := m.Cofactor(0, 0); got != 24 {
		t.Errorf("Cofactor(0,0) = %d, want 24", got)
	}
	// C(0,1) = -det([[0,5],[1,6]]) = 5.
	if got := m.Cofactor(0, 1); got != 5 {
		t.Errorf("Cofactor(0,1) = %d, want 5", got)
	}
}

// Property: m·adj(m) = det(m)·I for random matrices, including singular ones.
func TestAdjugateIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		m := randMatrix(rng, n, n, 5)
		want := Identity(n).Scale(m.Det())
		if !m.Mul(m.Adjugate()).Equal(want) {
			t.Fatalf("m·adj(m) != det(m)I for\n%v", m)
		}
	}
}

func TestIsUnimodular(t *testing.T) {
	if !Identity(4).IsUnimodular() {
		t.Error("identity not unimodular")
	}
	u := FromRows([]int64{1, 1}, []int64{0, -1}) // det -1
	if !u.IsUnimodular() {
		t.Error("det -1 matrix not reported unimodular")
	}
	if FromRows([]int64{2, 0}, []int64{0, 1}).IsUnimodular() {
		t.Error("det 2 matrix reported unimodular")
	}
	if New(2, 3).IsUnimodular() {
		t.Error("non-square matrix reported unimodular")
	}
}

func TestInverseUnimodular(t *testing.T) {
	u := FromRows(
		[]int64{1, -1, -1, -7},
		[]int64{0, 0, 0, 1},
		[]int64{0, 0, 1, 0},
		[]int64{0, 1, 0, 0},
	)
	v := u.InverseUnimodular()
	if !u.Mul(v).Equal(Identity(4)) || !v.Mul(u).Equal(Identity(4)) {
		t.Errorf("U·V != I:\nU=\n%v\nV=\n%v", u, v)
	}
}

func TestInverseUnimodularRejectsNonUnimodular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InverseUnimodular of det-2 matrix did not panic")
		}
	}()
	FromRows([]int64{2, 0}, []int64{0, 1}).InverseUnimodular()
}

// Property (testing/quick): for arbitrary 3x3 integer matrices with small
// entries, adj identity and det-transpose invariance hold.
func TestDecompQuickProperties(t *testing.T) {
	type m33 struct{ A, B, C, D, E, F, G, H, I int8 }
	f := func(x m33) bool {
		m := FromRows(
			[]int64{int64(x.A), int64(x.B), int64(x.C)},
			[]int64{int64(x.D), int64(x.E), int64(x.F)},
			[]int64{int64(x.G), int64(x.H), int64(x.I)},
		)
		d := m.Det()
		if d != m.Transpose().Det() {
			return false
		}
		return m.Mul(m.Adjugate()).Equal(Identity(3).Scale(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randMatrix returns an r×c matrix with entries uniform in [-amp, amp].
func randMatrix(rng *rand.Rand, r, c int, amp int64) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.Int63n(2*amp+1)-amp)
		}
	}
	return m
}
