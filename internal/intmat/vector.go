package intmat

import (
	"fmt"
	"strings"
)

// Vector is a dense integer vector. Whether it denotes a row or a column
// is determined by context, matching the paper's convention.
type Vector []int64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Vec is a convenience constructor: Vec(1, -2, 3).
func Vec(vs ...int64) Vector {
	v := make(Vector, len(vs))
	copy(v, vs)
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Equal reports whether v and w have the same length and entries.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry of v is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Dot returns the inner product of v and w. It panics if the lengths
// differ and panics with *OverflowError on int64 overflow.
func (v Vector) Dot(w Vector) int64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("intmat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s int64
	for i := range v {
		s = addChecked(s, mulChecked(v[i], w[i]))
	}
	return s
}

// Add returns v + w entrywise.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("intmat: Add length mismatch %d vs %d", len(v), len(w)))
	}
	r := make(Vector, len(v))
	for i := range v {
		r[i] = addChecked(v[i], w[i])
	}
	return r
}

// Sub returns v - w entrywise.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("intmat: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	r := make(Vector, len(v))
	for i := range v {
		r[i] = subChecked(v[i], w[i])
	}
	return r
}

// Scale returns c·v.
func (v Vector) Scale(c int64) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = mulChecked(c, v[i])
	}
	return r
}

// Neg returns -v.
func (v Vector) Neg() Vector { return v.Scale(-1) }

// GCD returns the non-negative greatest common divisor of the entries of
// v (0 for a zero or empty vector).
func (v Vector) GCD() int64 { return GCDAll(v...) }

// Primitive returns v divided by the gcd of its entries, i.e. the
// shortest integer vector on the same ray. The zero vector is returned
// unchanged.
func (v Vector) Primitive() Vector {
	g := v.GCD()
	if g == 0 || g == 1 {
		return v.Clone()
	}
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] / g
	}
	return r
}

// FirstNonZero returns the index of the first non-zero entry, or -1 for
// the zero vector.
func (v Vector) FirstNonZero() int {
	for i, x := range v {
		if x != 0 {
			return i
		}
	}
	return -1
}

// Canonical returns the primitive vector on the line spanned by v whose
// first non-zero entry is positive — the paper's normalization of
// conflict vectors (Definition 2.3 plus the sign convention of Section 3).
// The zero vector is returned unchanged.
func (v Vector) Canonical() Vector {
	p := v.Primitive()
	if i := p.FirstNonZero(); i >= 0 && p[i] < 0 {
		return p.Neg()
	}
	return p
}

// AbsSum returns Σ|v_i|.
func (v Vector) AbsSum() int64 {
	var s int64
	for _, x := range v {
		s = addChecked(s, absChecked(x))
	}
	return s
}

// InfNorm returns max|v_i| (0 for an empty vector).
func (v Vector) InfNorm() int64 {
	var m int64
	for _, x := range v {
		if a := absChecked(x); a > m {
			m = a
		}
	}
	return m
}

// String formats the vector as, e.g., "[1 -2 3]".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
