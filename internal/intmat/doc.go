// Package intmat implements exact linear algebra over the integers.
//
// The package is the numerical substrate for the conflict-free mapping
// theory of Shang & Fortes (1990): everything in that paper — conflict
// vectors, adjugates, Hermite normal forms, unimodular multipliers — is
// exact integer arithmetic, so floating point is never used. All values
// are int64 and every arithmetic operation is overflow-checked; an
// overflow aborts the computation with an *OverflowError panic, which the
// exported entry points convert into an ordinary error (see Guard).
//
// The matrices handled by mapping problems are tiny (algorithm dimension
// n is rarely above 6 and never above a few dozen), so the implementation
// favors clarity and exactness over asymptotic speed:
//
//   - determinants and ranks use fraction-free Bareiss elimination,
//   - adjugates are computed from cofactors,
//   - the Hermite normal form T·U = [L, 0] is computed by integer column
//     operations driven by the extended Euclidean algorithm, producing
//     the unimodular multiplier U and its inverse V = U^{-1} exactly as
//     required by Theorem 4.1 of the paper.
//
// The Hermite normal form used here matches the paper's relaxed
// definition: L is lower triangular and nonsingular, with positive
// diagonal and left-of-diagonal entries reduced modulo the diagonal;
// unlike the textbook form no further canonicity is imposed, because the
// theory only needs T transformed to [L, 0] by a unimodular U.
package intmat
