package intmat

import "fmt"

// Det returns the determinant of a square matrix, computed exactly with
// fraction-free Bareiss elimination. Intermediate values that overflow
// int64 are transparently recomputed with arbitrary precision; the
// function panics with *OverflowError only if the determinant itself
// does not fit in int64. It panics if m is not square.
func (m *Matrix) Det() int64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("intmat: Det of non-square %dx%d matrix", m.rows, m.cols))
	}
	if d, ok := m.detInt64Try(); ok {
		return d
	}
	return m.detBig()
}

// detInt64Try runs the int64 fast path, reporting ok = false when the
// intermediate arithmetic overflows.
func (m *Matrix) detInt64Try() (d int64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isOverflow := r.(*OverflowError); isOverflow {
				ok = false
				return
			}
			panic(r)
		}
	}()
	return m.detInt64(), true
}

func (m *Matrix) detInt64() int64 {
	n := m.rows
	if n == 0 {
		return 1
	}
	w := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		// Pivot: find a non-zero entry in column k at or below row k.
		if w.At(k, k) == 0 {
			p := -1
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					p = i
					break
				}
			}
			if p < 0 {
				return 0
			}
			w.swapRows(k, p)
			sign = -sign
		}
		pkk := w.At(k, k)
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				// Bareiss update: exact division by the previous pivot.
				num := subChecked(mulChecked(w.At(i, j), pkk), mulChecked(w.At(i, k), w.At(k, j)))
				w.Set(i, j, num/prev)
			}
			w.Set(i, k, 0)
		}
		prev = pkk
	}
	return mulChecked(sign, w.At(n-1, n-1))
}

// Rank returns the rank of m, computed exactly with fraction-free
// Bareiss elimination with full pivoting.
func (m *Matrix) Rank() int {
	w := m.Clone()
	rows, cols := w.rows, w.cols
	prev := int64(1)
	r := 0
	for r < rows && r < cols {
		// Find any non-zero pivot in the trailing block.
		pi, pj := -1, -1
	search:
		for i := r; i < rows; i++ {
			for j := r; j < cols; j++ {
				if w.At(i, j) != 0 {
					pi, pj = i, j
					break search
				}
			}
		}
		if pi < 0 {
			break
		}
		w.swapRows(r, pi)
		w.swapCols(r, pj)
		p := w.At(r, r)
		for i := r + 1; i < rows; i++ {
			for j := r + 1; j < cols; j++ {
				num := subChecked(mulChecked(w.At(i, j), p), mulChecked(w.At(i, r), w.At(r, j)))
				w.Set(i, j, num/prev)
			}
			w.Set(i, r, 0)
		}
		prev = p
		r++
	}
	return r
}

// Cofactor returns the (i, j) cofactor of a square matrix m:
// (-1)^(i+j) times the determinant of m with row i and column j removed.
func (m *Matrix) Cofactor(i, j int) int64 {
	if m.rows != m.cols {
		panic("intmat: Cofactor of non-square matrix")
	}
	d := m.DeleteRowCol(i, j).Det()
	if (i+j)%2 != 0 {
		return negChecked(d)
	}
	return d
}

// Adjugate returns the adjugate (classical adjoint) of a square matrix:
// Adj(m)[i][j] = Cofactor(j, i), so that m·Adj(m) = det(m)·I.
func (m *Matrix) Adjugate() *Matrix {
	if m.rows != m.cols {
		panic("intmat: Adjugate of non-square matrix")
	}
	n := m.rows
	adj := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			adj.Set(j, i, m.Cofactor(i, j))
		}
	}
	return adj
}

// IsUnimodular reports whether m is square, integral (always true here)
// and has determinant ±1.
func (m *Matrix) IsUnimodular() bool {
	if m.rows != m.cols {
		return false
	}
	d := m.Det()
	return d == 1 || d == -1
}

// InverseUnimodular returns the exact integral inverse of a unimodular
// matrix (V = U^{-1} in the paper's notation). It panics if m is not
// unimodular.
func (m *Matrix) InverseUnimodular() *Matrix {
	if m.rows != m.cols {
		panic("intmat: InverseUnimodular of non-square matrix")
	}
	d := m.Det()
	switch d {
	case 1:
		return m.Adjugate()
	case -1:
		return m.Adjugate().Neg()
	default:
		panic(fmt.Sprintf("intmat: InverseUnimodular of matrix with determinant %d", d))
	}
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.cols; c++ {
		m.a[i*m.cols+c], m.a[j*m.cols+c] = m.a[j*m.cols+c], m.a[i*m.cols+c]
	}
}

func (m *Matrix) swapCols(i, j int) {
	if i == j {
		return
	}
	for r := 0; r < m.rows; r++ {
		m.a[r*m.cols+i], m.a[r*m.cols+j] = m.a[r*m.cols+j], m.a[r*m.cols+i]
	}
}

// addColMultiple performs col_dst += c · col_src.
func (m *Matrix) addColMultiple(dst, src int, c int64) {
	if c == 0 {
		return
	}
	for r := 0; r < m.rows; r++ {
		m.a[r*m.cols+dst] = addChecked(m.a[r*m.cols+dst], mulChecked(c, m.a[r*m.cols+src]))
	}
}

// negCol negates column j in place.
func (m *Matrix) negCol(j int) {
	for r := 0; r < m.rows; r++ {
		m.a[r*m.cols+j] = negChecked(m.a[r*m.cols+j])
	}
}

// combineCols applies the 2x2 unimodular column transform
//
//	[col_i, col_j] ← [x·col_i + y·col_j,  u·col_i + v·col_j]
//
// where x·v - y·u = ±1 is the caller's responsibility.
func (m *Matrix) combineCols(i, j int, x, y, u, v int64) {
	for r := 0; r < m.rows; r++ {
		a, b := m.a[r*m.cols+i], m.a[r*m.cols+j]
		m.a[r*m.cols+i] = addChecked(mulChecked(x, a), mulChecked(y, b))
		m.a[r*m.cols+j] = addChecked(mulChecked(u, a), mulChecked(v, b))
	}
}
