package intmat

import (
	"testing"
	"testing/quick"
)

func TestVecConstructorsAndClone(t *testing.T) {
	v := Vec(1, -2, 3)
	if len(v) != 3 || v[0] != 1 || v[1] != -2 || v[2] != 3 {
		t.Fatalf("Vec(1,-2,3) = %v", v)
	}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone did not produce an independent copy")
	}
	z := NewVector(4)
	if !z.IsZero() || len(z) != 4 {
		t.Errorf("NewVector(4) = %v", z)
	}
}

func TestVectorEqual(t *testing.T) {
	if !Vec(1, 2).Equal(Vec(1, 2)) {
		t.Error("equal vectors reported unequal")
	}
	if Vec(1, 2).Equal(Vec(1, 3)) {
		t.Error("unequal vectors reported equal")
	}
	if Vec(1, 2).Equal(Vec(1, 2, 3)) {
		t.Error("different-length vectors reported equal")
	}
}

func TestDot(t *testing.T) {
	if got := Vec(1, 2, 3).Dot(Vec(4, -5, 6)); got != 4-10+18 {
		t.Errorf("Dot = %d, want 12", got)
	}
	if got := Vec().Dot(Vec()); got != 0 {
		t.Errorf("empty Dot = %d, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Vec(1).Dot(Vec(1, 2))
}

func TestAddSubScaleNeg(t *testing.T) {
	v, w := Vec(1, 2, 3), Vec(10, 20, 30)
	if got := v.Add(w); !got.Equal(Vec(11, 22, 33)) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vec(9, 18, 27)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(-2); !got.Equal(Vec(-2, -4, -6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); !got.Equal(Vec(-1, -2, -3)) {
		t.Errorf("Neg = %v", got)
	}
}

func TestPrimitive(t *testing.T) {
	cases := []struct{ in, want Vector }{
		{Vec(2, 4, 6), Vec(1, 2, 3)},
		{Vec(-2, 4), Vec(-1, 2)},
		{Vec(0, 0), Vec(0, 0)},
		{Vec(5), Vec(1)},
		{Vec(3, 5), Vec(3, 5)},
	}
	for _, c := range cases {
		if got := c.in.Primitive(); !got.Equal(c.want) {
			t.Errorf("Primitive(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want Vector }{
		{Vec(2, 4, 6), Vec(1, 2, 3)},
		{Vec(-2, 4), Vec(1, -2)},
		{Vec(0, -3, 6), Vec(0, 1, -2)},
		{Vec(0, 0), Vec(0, 0)},
	}
	for _, c := range cases {
		if got := c.in.Canonical(); !got.Equal(c.want) {
			t.Errorf("Canonical(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFirstNonZero(t *testing.T) {
	if got := Vec(0, 0, 5, 0).FirstNonZero(); got != 2 {
		t.Errorf("FirstNonZero = %d, want 2", got)
	}
	if got := Vec(0, 0).FirstNonZero(); got != -1 {
		t.Errorf("FirstNonZero of zero = %d, want -1", got)
	}
}

func TestNorms(t *testing.T) {
	v := Vec(3, -4, 0, 2)
	if got := v.AbsSum(); got != 9 {
		t.Errorf("AbsSum = %d, want 9", got)
	}
	if got := v.InfNorm(); got != 4 {
		t.Errorf("InfNorm = %d, want 4", got)
	}
}

func TestVectorString(t *testing.T) {
	if got := Vec(1, -2, 3).String(); got != "[1 -2 3]" {
		t.Errorf("String = %q", got)
	}
}

// Property: Canonical output is primitive with non-negative leading
// entry, and lies on the same line as the input.
func TestCanonicalProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		v := Vec(int64(a), int64(b), int64(c))
		p := v.Canonical()
		if v.IsZero() {
			return p.IsZero()
		}
		if p.GCD() != 1 {
			return false
		}
		if p[p.FirstNonZero()] <= 0 {
			return false
		}
		// Cross-product-style proportionality check: v and p parallel.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if v[i]*p[j] != v[j]*p[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
