package intmat

import "testing"

// FuzzHNFInvariants: arbitrary 2×4 matrices either fail with
// ErrRankDeficient or produce a decomposition satisfying every
// structural invariant.
func FuzzHNFInvariants(f *testing.F) {
	f.Add(int8(1), int8(7), int8(1), int8(1), int8(1), int8(7), int8(1), int8(0))
	f.Add(int8(1), int8(0), int8(0), int8(0), int8(0), int8(1), int8(0), int8(0))
	f.Add(int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i int8) {
		T := FromRows(
			[]int64{int64(a), int64(b), int64(c), int64(d)},
			[]int64{int64(e), int64(g), int64(h), int64(i)},
		)
		hn, err := HermiteNormalForm(T)
		ar := GetArena()
		defer PutArena(ar)
		var ha HNF
		arenaErr := HNFInto(&ha, T, ar)
		if err != nil {
			if T.Rank() == 2 {
				t.Fatalf("full-rank matrix rejected: %v\n%v", err, T)
			}
			if arenaErr == nil {
				t.Fatalf("arena path accepted what the wrapper rejected:\n%v", T)
			}
			return
		}
		if T.Rank() != 2 {
			t.Fatalf("rank-deficient matrix accepted:\n%v", T)
		}
		if err := hn.Verify(); err != nil {
			t.Fatalf("invariants: %v\nT=\n%v", err, T)
		}
		// The arena-backed in-place decomposition must be byte-identical.
		if arenaErr != nil || !ha.H.Equal(hn.H) || !ha.U.Equal(hn.U) {
			t.Fatalf("HNFInto(arena) diverged (err=%v) for\n%v", arenaErr, T)
		}
		for _, u := range hn.NullBasis() {
			if !T.MulVec(u).IsZero() {
				t.Fatalf("null basis %v not annihilated", u)
			}
			if u.GCD() != 1 {
				t.Fatalf("null basis %v not primitive", u)
			}
		}
	})
}

// FuzzRowNullBasis: the fast single-row reduction agrees with the
// definitional property h·b = 0 and primitivity, for arbitrary rows.
func FuzzRowNullBasis(f *testing.F) {
	f.Add(int16(1), int16(9), int16(3), int16(0))
	f.Add(int16(0), int16(0), int16(0), int16(0))
	f.Add(int16(-6), int16(10), int16(15), int16(1))
	f.Fuzz(func(t *testing.T, a, b, c, d int16) {
		h := Vec(int64(a), int64(b), int64(c), int64(d))
		basis, err := RowNullBasis(h)
		ar := GetArena()
		defer PutArena(ar)
		arenaBasis, arenaErr := RowNullBasisAppend(nil, ar, h)
		if err != nil {
			if !h.IsZero() {
				t.Fatalf("non-zero row rejected: %v", err)
			}
			if arenaErr == nil {
				t.Fatalf("arena path accepted the zero row")
			}
			return
		}
		if len(basis) != 3 {
			t.Fatalf("basis size %d", len(basis))
		}
		// The arena-backed append form must return the same basis.
		if arenaErr != nil || len(arenaBasis) != len(basis) {
			t.Fatalf("RowNullBasisAppend diverged (err=%v, %d vectors) for h=%v", arenaErr, len(arenaBasis), h)
		}
		for i, v := range basis {
			if !arenaBasis[i].Equal(v) {
				t.Fatalf("arena basis[%d] = %v, want %v for h=%v", i, arenaBasis[i], v, h)
			}
		}
		for _, v := range basis {
			if h.Dot(v) != 0 {
				t.Fatalf("h·%v != 0 for h=%v", v, h)
			}
			if v.GCD() != 1 {
				t.Fatalf("basis %v not primitive", v)
			}
		}
	})
}
