package intmat

import (
	"fmt"
	"math"
	"strings"
)

// This file provides compact, comparable map keys for small integer
// tuples. The optimizers and the simulator key maps by processor
// images, index points and (processor, time) pairs millions of times
// per search; formatting each tuple with Vector.String allocates a
// fresh string per lookup and dominates those loops. A Key packs up to
// keyMaxLen coordinates into a fixed-size comparable struct, so the map
// operations allocate nothing; tuples that do not fit (too long, or a
// coordinate outside int32) fall back to the string form through
// TupleKey, keeping every caller exact for arbitrary inputs.

// keyMaxLen is the maximum number of coordinates a Key can hold.
const keyMaxLen = 8

// Key is a comparable fixed-size encoding of an integer tuple with at
// most keyMaxLen entries, each fitting in int32. The zero Key encodes
// the empty tuple.
type Key struct {
	n int8
	e [keyMaxLen]int32
}

// MakeKey encodes v; ok is false when v does not fit (length or
// coordinate range), in which case callers must use the string form.
func MakeKey(v Vector) (Key, bool) {
	var k Key
	if len(v) > keyMaxLen {
		return k, false
	}
	k.n = int8(len(v))
	for i, x := range v {
		if x < math.MinInt32 || x > math.MaxInt32 {
			return Key{}, false
		}
		k.e[i] = int32(x)
	}
	return k, true
}

// With returns k extended by one coordinate; ok is false when k is full
// or x is out of range.
func (k Key) With(x int64) (Key, bool) {
	if int(k.n) >= keyMaxLen || x < math.MinInt32 || x > math.MaxInt32 {
		return Key{}, false
	}
	k.e[k.n] = int32(x)
	k.n++
	return k, true
}

// TupleKey is a tuple usable as a map key through VecMap: the compact
// Key when the tuple fits, its string rendering otherwise.
type TupleKey struct {
	k    Key
	fast bool
	s    string
}

// KeyFor builds the TupleKey of v followed by the extra scalars.
func KeyFor(v Vector, extra ...int64) TupleKey {
	k, ok := MakeKey(v)
	for _, x := range extra {
		if !ok {
			break
		}
		k, ok = k.With(x)
	}
	if ok {
		return TupleKey{k: k, fast: true}
	}
	var sb strings.Builder
	sb.WriteString(v.String())
	for _, x := range extra {
		fmt.Fprintf(&sb, "|%d", x)
	}
	return TupleKey{s: sb.String()}
}

// VecMap maps integer tuples to values of type V. Lookups on tuples
// that fit a Key are allocation-free; oversized tuples share the map
// through a string-keyed fallback (the two key spaces cannot collide,
// because a given tuple always encodes the same way).
type VecMap[V any] struct {
	fast map[Key]V
	slow map[string]V
}

// NewVecMap returns a VecMap with capacity hint n for the fast path.
func NewVecMap[V any](n int) *VecMap[V] {
	return &VecMap[V]{fast: make(map[Key]V, n)}
}

// Load returns the value stored under k.
func (m *VecMap[V]) Load(k TupleKey) (V, bool) {
	if k.fast {
		v, ok := m.fast[k.k]
		return v, ok
	}
	if m.slow == nil {
		var zero V
		return zero, false
	}
	v, ok := m.slow[k.s]
	return v, ok
}

// Store sets the value stored under k.
func (m *VecMap[V]) Store(k TupleKey, v V) {
	if k.fast {
		m.fast[k.k] = v
		return
	}
	if m.slow == nil {
		m.slow = make(map[string]V)
	}
	m.slow[k.s] = v
}

// Len returns the number of stored tuples.
func (m *VecMap[V]) Len() int { return len(m.fast) + len(m.slow) }

// Clear removes all stored tuples but keeps the map storage, so a
// pooled VecMap can be rebound to a new key space without reallocating
// its buckets.
func (m *VecMap[V]) Clear() {
	clear(m.fast)
	clear(m.slow)
}

// Values returns the stored values in unspecified order.
func (m *VecMap[V]) Values() []V {
	out := make([]V, 0, m.Len())
	for _, v := range m.fast {
		out = append(out, v)
	}
	for _, v := range m.slow {
		out = append(out, v)
	}
	return out
}
