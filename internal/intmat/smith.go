package intmat

import (
	"fmt"
	"math/big"
)

// SNF is a Smith normal form decomposition of an integer matrix A:
//
//	P · A · Q = D
//
// with P, Q unimodular and D diagonal, d_1 | d_2 | … | d_r > 0 (the
// invariant factors), zero elsewhere. The Smith form complements the
// Hermite form in the lattice toolkit: the product of invariant factors
// of a lattice basis is the index of the lattice in its saturation,
// which the tests use to prove two bases generate the same lattice, and
// the invariant factors of a mapping matrix T describe the structure of
// Z^k / T·Z^n — how densely the mapping's image covers processor-time
// coordinates.
type SNF struct {
	A *Matrix // the decomposed matrix (not copied)
	P *Matrix // k×k unimodular row multiplier
	D *Matrix // k×n diagonal with divisibility chain
	Q *Matrix // n×n unimodular column multiplier
}

// SmithNormalForm computes the decomposition exactly. An
// overflow-checked int64 elimination handles the common small inputs;
// on intermediate overflow the computation reruns in big.Int (the
// result must then fit in int64 or *OverflowError is returned through
// the error).
func SmithNormalForm(a *Matrix) (*SNF, error) {
	s := &SNF{}
	if err := SmithNormalFormInto(s, a, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// SmithNormalFormInto computes the Smith normal form of a into s,
// reusing s's matrices when their shapes match (or drawing fresh ones
// from ar when non-nil; the results then obey the arena's lifetime).
// The int64 fast path mirrors the arbitrary-precision elimination
// operation for operation — same minimal-pivot choice, same restart
// points — so the two produce identical decompositions; on intermediate
// overflow the big path rebuilds the result on the heap regardless of
// ar.
func SmithNormalFormInto(s *SNF, a *Matrix, ar *Arena) error {
	k, n := a.Rows(), a.Cols()
	s.A = a
	D := intoMat(s.D, ar, k, n)
	P := intoMat(s.P, ar, k, k)
	Q := intoMat(s.Q, ar, n, n)
	copy(D.a, a.a)
	setIdentity(P)
	setIdentity(Q)
	if smithFastInt64(D, P, Q, k, n) {
		s.P, s.D, s.Q = P, D, Q
		return nil
	}
	sb, err := smithNormalFormBig(a)
	if err != nil {
		return err
	}
	s.P, s.D, s.Q = sb.P, sb.D, sb.Q
	return nil
}

func setIdentity(m *Matrix) {
	for i := range m.a {
		m.a[i] = 0
	}
	for i := 0; i < m.rows && i < m.cols; i++ {
		m.a[i*m.cols+i] = 1
	}
}

// addRowMultiple performs row_dst += c · row_src in checked int64.
func (m *Matrix) addRowMultiple(dst, src int, c int64) {
	if c == 0 {
		return
	}
	for j := 0; j < m.cols; j++ {
		m.a[dst*m.cols+j] = addChecked(m.a[dst*m.cols+j], mulChecked(c, m.a[src*m.cols+j]))
	}
}

// smithFastInt64 runs the Smith elimination on D, P, Q in checked
// int64, returning false when an intermediate overflowed (the matrices
// are then partially transformed garbage and the caller must fall
// back). The control flow replicates smithNormalFormBig exactly.
func smithFastInt64(D, P, Q *Matrix, k, n int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isOverflow := r.(*OverflowError); isOverflow {
				ok = false
				return
			}
			panic(r)
		}
	}()
	r := 0
	for r < k && r < n {
		// Find a pivot: entry of minimal non-zero magnitude in the
		// trailing block.
		pi, pj := -1, -1
		var best int64
		for i := r; i < k; i++ {
			for j := r; j < n; j++ {
				v := D.a[i*n+j]
				if v == 0 {
					continue
				}
				av := absChecked(v)
				if pi < 0 || av < best {
					pi, pj, best = i, j, av
				}
			}
		}
		if pi < 0 {
			break // trailing block all zero
		}
		D.swapRows(r, pi)
		P.swapRows(r, pi)
		D.swapCols(r, pj)
		Q.swapCols(r, pj)

		// Clear row r and column r by Euclidean reduction; any non-zero
		// remainder is swapped into the pivot position (it is strictly
		// smaller, so this terminates) and the scan restarts.
	elim:
		for {
			p := D.a[r*n+r]
			for i := r + 1; i < k; i++ {
				v := D.a[i*n+r]
				if v == 0 {
					continue
				}
				q := v / p
				if q != 0 {
					D.addRowMultiple(i, r, negChecked(q))
					P.addRowMultiple(i, r, negChecked(q))
				}
				if D.a[i*n+r] != 0 {
					D.swapRows(r, i)
					P.swapRows(r, i)
					continue elim
				}
			}
			for j := r + 1; j < n; j++ {
				v := D.a[r*n+j]
				if v == 0 {
					continue
				}
				q := v / p
				if q != 0 {
					D.addColMultiple(j, r, negChecked(q))
					Q.addColMultiple(j, r, negChecked(q))
				}
				if D.a[r*n+j] != 0 {
					D.swapCols(r, j)
					Q.swapCols(r, j)
					continue elim
				}
			}
			break
		}
		// Divisibility fix-up: the pivot must divide every remaining
		// entry; if some D[i][j] resists, fold its row in and restart
		// this pivot position.
		p := D.a[r*n+r]
		fixed := false
		for i := r + 1; i < k && !fixed; i++ {
			for j := r + 1; j < n && !fixed; j++ {
				if D.a[i*n+j]%p != 0 {
					D.addRowMultiple(r, i, 1)
					P.addRowMultiple(r, i, 1)
					fixed = true
				}
			}
		}
		if fixed {
			continue // re-run elimination at the same r
		}
		if p < 0 {
			D.negCol(r)
			Q.negCol(r)
		}
		r++
	}
	return true
}

// smithNormalFormBig is the arbitrary-precision reference elimination —
// the overflow fallback of SmithNormalFormInto and the oracle for the
// differential tests.
func smithNormalFormBig(a *Matrix) (s *SNF, err error) {
	defer Guard(&err)
	k, n := a.Rows(), a.Cols()
	D := newBigMatrix(a)
	P := newBigIdentity(k)
	Q := newBigIdentity(n)

	addRowMultiple := func(m *bigMatrix, dst, src int, c *big.Int) {
		var t big.Int
		for j := 0; j < m.cols; j++ {
			t.Mul(c, m.a[src*m.cols+j])
			m.a[dst*m.cols+j].Add(m.a[dst*m.cols+j], &t)
		}
	}
	swapRows := func(m *bigMatrix, i, j int) {
		if i == j {
			return
		}
		for c := 0; c < m.cols; c++ {
			m.a[i*m.cols+c], m.a[j*m.cols+c] = m.a[j*m.cols+c], m.a[i*m.cols+c]
		}
	}

	r := 0
	for r < k && r < n {
		// Find a pivot: entry of minimal non-zero magnitude in the
		// trailing block (minimal pivots keep coefficients small).
		pi, pj := -1, -1
		var best big.Int
		for i := r; i < k; i++ {
			for j := r; j < n; j++ {
				v := D.at(i, j)
				if v.Sign() == 0 {
					continue
				}
				var av big.Int
				av.Abs(v)
				if pi < 0 || av.Cmp(&best) < 0 {
					pi, pj, best = i, j, *new(big.Int).Set(&av)
				}
			}
		}
		if pi < 0 {
			break // trailing block all zero
		}
		swapRows(D, r, pi)
		swapRows(P, r, pi)
		D.swapCols(r, pj)
		Q.swapCols(r, pj)

		// Clear row r and column r by Euclidean reduction. After any
		// swap the pivot changes (it strictly shrinks in magnitude, so
		// this terminates); restart the scan with the fresh pivot —
		// note D.at returns the cell's *big.Int, which a swap silently
		// re-homes, so the pivot must be re-read every round.
	elim:
		for {
			p := new(big.Int).Set(D.at(r, r))
			for i := r + 1; i < k; i++ {
				v := D.at(i, r)
				if v.Sign() == 0 {
					continue
				}
				q := new(big.Int).Quo(v, p)
				if q.Sign() != 0 {
					nq := new(big.Int).Neg(q)
					addRowMultiple(D, i, r, nq)
					addRowMultiple(P, i, r, nq)
				}
				if D.at(i, r).Sign() != 0 {
					// Remainder smaller than the pivot: swap it up and
					// restart with the shrunken pivot.
					swapRows(D, r, i)
					swapRows(P, r, i)
					continue elim
				}
			}
			for j := r + 1; j < n; j++ {
				v := D.at(r, j)
				if v.Sign() == 0 {
					continue
				}
				q := new(big.Int).Quo(v, p)
				if q.Sign() != 0 {
					nq := new(big.Int).Neg(q)
					D.addColMultiple(j, r, nq)
					Q.addColMultiple(j, r, nq)
				}
				if D.at(r, j).Sign() != 0 {
					D.swapCols(r, j)
					Q.swapCols(r, j)
					continue elim
				}
			}
			break
		}
		// Divisibility fix-up: the pivot must divide every remaining
		// entry; if some D[i][j] resists, fold its row in and restart
		// this pivot position.
		p := D.at(r, r)
		fixed := false
		for i := r + 1; i < k && !fixed; i++ {
			for j := r + 1; j < n && !fixed; j++ {
				var m big.Int
				m.Mod(D.at(i, j), p)
				if m.Sign() != 0 {
					addRowMultiple(D, r, i, big.NewInt(1))
					addRowMultiple(P, r, i, big.NewInt(1))
					fixed = true
				}
			}
		}
		if fixed {
			continue // re-run elimination at the same r
		}
		if p.Sign() < 0 {
			D.negCol(r)
			Q.negCol(r)
		}
		r++
	}
	return &SNF{A: a, P: P.toMatrix(), D: D.toMatrix(), Q: Q.toMatrix()}, nil
}

// InvariantFactors returns d_1, …, d_r (positive, each dividing the
// next).
func (s *SNF) InvariantFactors() []int64 {
	var fs []int64
	for i := 0; i < s.D.Rows() && i < s.D.Cols(); i++ {
		if v := s.D.At(i, i); v != 0 {
			fs = append(fs, v)
		}
	}
	return fs
}

// Rank returns the number of invariant factors.
func (s *SNF) Rank() int { return len(s.InvariantFactors()) }

// Verify checks P·A·Q = D, unimodularity of P and Q, diagonality, and
// the divisibility chain.
func (s *SNF) Verify() error {
	if !s.P.Mul(s.A).Mul(s.Q).Equal(s.D) {
		return fmt.Errorf("intmat: SNF verify: P·A·Q != D")
	}
	if !s.P.IsUnimodular() || !s.Q.IsUnimodular() {
		return fmt.Errorf("intmat: SNF verify: multiplier not unimodular")
	}
	for i := 0; i < s.D.Rows(); i++ {
		for j := 0; j < s.D.Cols(); j++ {
			if i != j && s.D.At(i, j) != 0 {
				return fmt.Errorf("intmat: SNF verify: off-diagonal D[%d][%d] = %d", i, j, s.D.At(i, j))
			}
		}
	}
	fs := s.InvariantFactors()
	for i := range fs {
		if fs[i] <= 0 {
			return fmt.Errorf("intmat: SNF verify: invariant factor %d = %d not positive", i, fs[i])
		}
		if i > 0 && fs[i]%fs[i-1] != 0 {
			return fmt.Errorf("intmat: SNF verify: divisibility broken: %d ∤ %d", fs[i-1], fs[i])
		}
		// The zero diagonal (if any) must follow the non-zero prefix.
	}
	for i := len(fs); i < min(s.D.Rows(), s.D.Cols()); i++ {
		if s.D.At(i, i) != 0 {
			return fmt.Errorf("intmat: SNF verify: zero factor before non-zero at %d", i)
		}
	}
	return nil
}

// LatticeIndex returns the index [L₂ : L₁] of the lattice generated by
// the columns of b1 inside the lattice generated by the columns of b2,
// when b1's lattice is a finite-index sublattice; ok is false when it
// is not a sublattice or the index is infinite. Both matrices must have
// the same number of rows. Index 1 means the lattices are equal — the
// exact test the factored conflict analysis is validated with.
func LatticeIndex(b1, b2 *Matrix) (index int64, ok bool) {
	if b1.Rows() != b2.Rows() {
		return 0, false
	}
	// Solve b2 · X = b1 over the rationals via the Smith form of b2:
	// X = Q · D⁺ · P · b1 must be integral, and the ranks must agree.
	s, err := SmithNormalForm(b2)
	if err != nil {
		return 0, false
	}
	r := s.Rank()
	if b2.Cols() != r || b1.Cols() != r {
		// Basis matrices with dependent columns are out of scope.
		return 0, false
	}
	pb := s.P.Mul(b1) // k×r
	// Rows ≥ r of P·b1 must vanish (otherwise b1 ⊄ span(b2)).
	for i := r; i < pb.Rows(); i++ {
		for j := 0; j < pb.Cols(); j++ {
			if pb.At(i, j) != 0 {
				return 0, false
			}
		}
	}
	x := New(b2.Cols(), r)
	for i := 0; i < r; i++ {
		d := s.D.At(i, i)
		for j := 0; j < r; j++ {
			v := pb.At(i, j)
			if v%d != 0 {
				return 0, false // not integral: not a sublattice
			}
			x.Set(i, j, v/d)
		}
	}
	x = s.Q.Mul(x)
	det := x.Det()
	if det < 0 {
		det = -det
	}
	if det == 0 {
		return 0, false
	}
	return det, true
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
