package intmat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddChecked(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{1, 2, 3},
		{-5, 5, 0},
		{math.MaxInt64 - 1, 1, math.MaxInt64},
		{math.MinInt64 + 1, -1, math.MinInt64},
	}
	for _, c := range cases {
		if got := addChecked(c.a, c.b); got != c.want {
			t.Errorf("addChecked(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddCheckedOverflow(t *testing.T) {
	for _, c := range [][2]int64{
		{math.MaxInt64, 1},
		{math.MinInt64, -1},
		{math.MaxInt64, math.MaxInt64},
	} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("addChecked(%d, %d) did not panic", c[0], c[1])
				} else if _, ok := r.(*OverflowError); !ok {
					t.Errorf("addChecked(%d, %d) panicked with %v, want *OverflowError", c[0], c[1], r)
				}
			}()
			addChecked(c[0], c[1])
		}()
	}
}

func TestSubCheckedOverflow(t *testing.T) {
	for _, c := range [][2]int64{
		{math.MinInt64, 1},
		{math.MaxInt64, -1},
		{0, math.MinInt64},
	} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("subChecked(%d, %d) did not panic", c[0], c[1])
				}
			}()
			subChecked(c[0], c[1])
		}()
	}
}

func TestMulChecked(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, math.MaxInt64, 0},
		{3, 7, 21},
		{-3, 7, -21},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MinInt64, 1, math.MinInt64},
		{1 << 31, 1 << 31, 1 << 62},
	}
	for _, c := range cases {
		if got := mulChecked(c.a, c.b); got != c.want {
			t.Errorf("mulChecked(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCheckedOverflow(t *testing.T) {
	for _, c := range [][2]int64{
		{math.MaxInt64, 2},
		{math.MinInt64, -1},
		{-1, math.MinInt64},
		{1 << 32, 1 << 32},
	} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("mulChecked(%d, %d) did not panic", c[0], c[1])
				}
			}()
			mulChecked(c[0], c[1])
		}()
	}
}

func TestGuardConvertsOverflow(t *testing.T) {
	f := func() (err error) {
		defer Guard(&err)
		mulChecked(math.MaxInt64, math.MaxInt64)
		return nil
	}
	err := f()
	if err == nil {
		t.Fatal("Guard did not capture the overflow")
	}
	if _, ok := err.(*OverflowError); !ok {
		t.Fatalf("Guard produced %T, want *OverflowError", err)
	}
}

func TestGuardPassesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Guard swallowed a non-overflow panic")
		}
	}()
	var err error
	func() {
		defer Guard(&err)
		panic("unrelated")
	}()
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{7, 13, 1},
		{1, math.MaxInt64, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDAll(t *testing.T) {
	if got := GCDAll(); got != 0 {
		t.Errorf("GCDAll() = %d, want 0", got)
	}
	if got := GCDAll(4, 6, 8); got != 2 {
		t.Errorf("GCDAll(4, 6, 8) = %d, want 2", got)
	}
	if got := GCDAll(3, 5, 7); got != 1 {
		t.Errorf("GCDAll(3, 5, 7) = %d, want 1", got)
	}
	if got := GCDAll(0, 0, -9); got != 9 {
		t.Errorf("GCDAll(0, 0, -9) = %d, want 9", got)
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0},
		{4, 6, 12},
		{-4, 6, 12},
		{7, 13, 91},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtGCDBasic(t *testing.T) {
	cases := [][2]int64{{240, 46}, {46, 240}, {-240, 46}, {240, -46}, {-240, -46}, {0, 5}, {5, 0}, {0, 0}, {1, 1}, {17, 17}}
	for _, c := range cases {
		g, x, y := ExtGCD(c[0], c[1])
		if g != GCD(c[0], c[1]) {
			t.Errorf("ExtGCD(%d, %d) gcd = %d, want %d", c[0], c[1], g, GCD(c[0], c[1]))
		}
		if c[0]*x+c[1]*y != g {
			t.Errorf("ExtGCD(%d, %d): %d*%d + %d*%d = %d, want %d", c[0], c[1], c[0], x, c[1], y, c[0]*x+c[1]*y, g)
		}
	}
}

// Property: ExtGCD always satisfies the Bézout identity and produces the
// same gcd as GCD, for arbitrary int32-range inputs.
func TestExtGCDProperty(t *testing.T) {
	f := func(a32, b32 int32) bool {
		a, b := int64(a32), int64(b32)
		g, x, y := ExtGCD(a, b)
		if g < 0 {
			return false
		}
		if g != GCD(a, b) {
			return false
		}
		return a*x+b*y == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: gcd divides both operands and any common divisor divides gcd
// (checked via gcd(a/g, b/g) == 1).
func TestGCDProperty(t *testing.T) {
	f := func(a32, b32 int32) bool {
		a, b := int64(a32), int64(b32)
		g := GCD(a, b)
		if g == 0 {
			return a == 0 && b == 0
		}
		if a%g != 0 || b%g != 0 {
			return false
		}
		return GCD(a/g, b/g) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
