package intmat

import (
	"math"
	"testing"
)

func TestMakeKeyRoundTrip(t *testing.T) {
	a, ok := MakeKey(Vec(1, -2, 3))
	if !ok {
		t.Fatal("small vector did not encode")
	}
	b, ok := MakeKey(Vec(1, -2, 3))
	if !ok || a != b {
		t.Error("equal vectors encode to different keys")
	}
	c, _ := MakeKey(Vec(1, -2, 4))
	if a == c {
		t.Error("distinct vectors encode to the same key")
	}
	// Length is part of the key: [1 0] ≠ [1].
	d, _ := MakeKey(Vec(1, 0))
	e, _ := MakeKey(Vec(1))
	if d == e {
		t.Error("keys of different lengths collide")
	}
}

func TestMakeKeyRejects(t *testing.T) {
	if _, ok := MakeKey(make(Vector, keyMaxLen+1)); ok {
		t.Error("over-long vector encoded")
	}
	if _, ok := MakeKey(Vec(math.MaxInt32 + 1)); ok {
		t.Error("out-of-range coordinate encoded")
	}
	if _, ok := MakeKey(Vec(math.MinInt32)); !ok {
		t.Error("in-range coordinate rejected")
	}
}

func TestKeyWith(t *testing.T) {
	k, _ := MakeKey(Vec(1, 2))
	k2, ok := k.With(7)
	if !ok {
		t.Fatal("With failed on short key")
	}
	want, _ := MakeKey(Vec(1, 2, 7))
	if k2 != want {
		t.Error("With differs from direct encoding")
	}
	full, _ := MakeKey(make(Vector, keyMaxLen))
	if _, ok := full.With(1); ok {
		t.Error("With succeeded on a full key")
	}
	if _, ok := k.With(math.MaxInt32 + 1); ok {
		t.Error("With accepted out-of-range coordinate")
	}
}

func TestVecMapFastAndSlow(t *testing.T) {
	m := NewVecMap[int](4)
	m.Store(KeyFor(Vec(1, 2, 3)), 10)
	m.Store(KeyFor(Vec(1, 2, 3), 9), 20) // same vector, extra scalar
	long := make(Vector, keyMaxLen+1)    // forces the slow path
	m.Store(KeyFor(long), 30)
	m.Store(KeyFor(Vec(math.MaxInt32+1)), 40) // overflow forces slow path

	if v, ok := m.Load(KeyFor(Vec(1, 2, 3))); !ok || v != 10 {
		t.Errorf("fast load = %d,%v want 10", v, ok)
	}
	if v, ok := m.Load(KeyFor(Vec(1, 2, 3), 9)); !ok || v != 20 {
		t.Errorf("fast load with extra = %d,%v want 20", v, ok)
	}
	if v, ok := m.Load(KeyFor(long)); !ok || v != 30 {
		t.Errorf("slow load = %d,%v want 30", v, ok)
	}
	if v, ok := m.Load(KeyFor(Vec(math.MaxInt32 + 1))); !ok || v != 40 {
		t.Errorf("slow overflow load = %d,%v want 40", v, ok)
	}
	if _, ok := m.Load(KeyFor(Vec(9, 9))); ok {
		t.Error("missing tuple found")
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
	// Overwrite keeps Len stable.
	m.Store(KeyFor(Vec(1, 2, 3)), 11)
	if v, _ := m.Load(KeyFor(Vec(1, 2, 3))); v != 11 || m.Len() != 4 {
		t.Errorf("overwrite: v=%d len=%d", v, m.Len())
	}
}

func BenchmarkVecMapStore(b *testing.B) {
	pts := make([]Vector, 64)
	for i := range pts {
		pts[i] = Vec(int64(i%8), int64(i/8), int64(i%5))
	}
	b.Run("key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := NewVecMap[struct{}](64)
			for _, p := range pts {
				m.Store(KeyFor(p, 3), struct{}{})
			}
		}
	})
	b.Run("string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := make(map[string]struct{}, 64)
			for _, p := range pts {
				m[p.String()+"|3"] = struct{}{}
			}
		}
	})
}
