//go:build !race

package intmat

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-budget tests skip under -race: the detector instruments
// allocations and makes AllocsPerRun meaningless.
const RaceEnabled = false
