package intmat

import (
	"math/rand"
	"testing"
)

func TestSmithKnownForms(t *testing.T) {
	cases := []struct {
		m       *Matrix
		factors []int64
	}{
		{FromRows([]int64{2, 4, 4}, []int64{-6, 6, 12}, []int64{10, 4, 16}), []int64{2, 2, 156}},
		{Identity(3), []int64{1, 1, 1}},
		{FromRows([]int64{2, 0}, []int64{0, 3}), []int64{1, 6}},
		{FromRows([]int64{6}), []int64{6}},
		{New(2, 2), nil},
		{FromRows([]int64{1, 2, 3}, []int64{2, 4, 6}), []int64{1}},
	}
	for i, c := range cases {
		s, err := SmithNormalForm(c.m)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("case %d: %v\nD=\n%v", i, err, s.D)
		}
		fs := s.InvariantFactors()
		if len(fs) != len(c.factors) {
			t.Errorf("case %d: factors %v, want %v", i, fs, c.factors)
			continue
		}
		for j := range fs {
			if fs[j] != c.factors[j] {
				t.Errorf("case %d: factors %v, want %v", i, fs, c.factors)
				break
			}
		}
	}
}

func TestSmithRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(4)
		m := randMatrix(rng, k, n, 6)
		s, err := SmithNormalForm(m)
		if err != nil {
			t.Fatalf("SmithNormalForm(%v): %v", m, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("Verify(%v): %v\nP=\n%v\nD=\n%v\nQ=\n%v", m, err, s.P, s.D, s.Q)
		}
		if s.Rank() != m.Rank() {
			t.Fatalf("SNF rank %d != matrix rank %d for\n%v", s.Rank(), m.Rank(), m)
		}
		// |det| equals the product of invariant factors for square
		// full-rank matrices.
		if k == n && s.Rank() == n {
			prod := int64(1)
			for _, f := range s.InvariantFactors() {
				prod *= f
			}
			det := m.Det()
			if det < 0 {
				det = -det
			}
			if prod != det {
				t.Fatalf("Πd_i = %d != |det| = %d for\n%v", prod, det, m)
			}
		}
	}
}

func TestLatticeIndexBasics(t *testing.T) {
	// 2Z² inside Z²: index 4.
	b1 := FromRows([]int64{2, 0}, []int64{0, 2})
	b2 := Identity(2)
	if idx, ok := LatticeIndex(b1, b2); !ok || idx != 4 {
		t.Errorf("index = %d, %v; want 4", idx, ok)
	}
	// Equal lattices under different bases: index 1.
	c1 := FromRows([]int64{1, 1}, []int64{0, 1})
	if idx, ok := LatticeIndex(c1, Identity(2)); !ok || idx != 1 {
		t.Errorf("index = %d, %v; want 1", idx, ok)
	}
	// Not a sublattice: (1/0) vs 2Z².
	if _, ok := LatticeIndex(Identity(2), b1); ok {
		t.Error("Z² reported as sublattice of 2Z²")
	}
	// Mismatched rows.
	if _, ok := LatticeIndex(Identity(2), Identity(3)); ok {
		t.Error("row mismatch accepted")
	}
}

// TestLatticeIndexValidatesFactoredBasis: the factored and HNF conflict
// bases must generate identical lattices — index 1 both ways. This is
// the Smith-form-powered version of the membership checks elsewhere.
func TestLatticeIndexValidatesFactoredBasis(t *testing.T) {
	T := FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	h, err := HermiteNormalForm(T)
	if err != nil {
		t.Fatal(err)
	}
	basis := h.NullBasis()
	bm := New(4, len(basis))
	for j, b := range basis {
		bm.SetCol(j, b)
	}
	// An equivalent basis produced by a unimodular recombination.
	alt := New(4, 2)
	alt.SetCol(0, basis[0].Add(basis[1].Scale(3)))
	alt.SetCol(1, basis[1])
	if idx, ok := LatticeIndex(alt, bm); !ok || idx != 1 {
		t.Errorf("recombined basis index = %d, %v; want 1", idx, ok)
	}
	// Doubling one generator gives index 2.
	alt2 := New(4, 2)
	alt2.SetCol(0, basis[0].Scale(2))
	alt2.SetCol(1, basis[1])
	if idx, ok := LatticeIndex(alt2, bm); !ok || idx != 2 {
		t.Errorf("doubled basis index = %d, %v; want 2", idx, ok)
	}
}

// TestSmithAgreesWithHermiteOnMappingMatrices: invariant factors all 1
// iff the mapping matrix is surjective onto Z^k — every mapping matrix
// the optimizers emit satisfies this (the HNF pivots are then ±1
// products... verified indirectly: factors of T = [S; Π] for the
// paper's designs are all unity).
func TestSmithAgreesWithHermiteOnMappingMatrices(t *testing.T) {
	for _, T := range []*Matrix{
		FromRows([]int64{1, 1, -1}, []int64{1, 4, 1}),
		FromRows([]int64{0, 0, 1}, []int64{5, 1, 1}),
	} {
		s, err := SmithNormalForm(T)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.InvariantFactors() {
			if f != 1 {
				t.Errorf("invariant factor %d != 1 for\n%v", f, T)
			}
		}
	}
}

func BenchmarkSmith4x6(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	m := randMatrix(rng, 4, 6, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SmithNormalForm(m); err != nil {
			b.Fatal(err)
		}
	}
}
