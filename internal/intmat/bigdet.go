package intmat

import "math/big"

// detBig computes the determinant with arbitrary-precision Bareiss
// elimination. It is the fallback used by Det when the int64 fast path
// overflows (Hermite multipliers of adversarial inputs can have large
// entries even when the final determinant is ±1). The result must fit
// in int64 or the computation panics with *OverflowError.
func (m *Matrix) detBig() int64 {
	n := m.rows
	if n == 0 {
		return 1
	}
	w := make([]*big.Int, n*n)
	for i := range w {
		w[i] = big.NewInt(m.a[i])
	}
	at := func(i, j int) *big.Int { return w[i*n+j] }
	sign := int64(1)
	prev := big.NewInt(1)
	var num, t1, t2 big.Int
	for k := 0; k < n-1; k++ {
		if at(k, k).Sign() == 0 {
			p := -1
			for i := k + 1; i < n; i++ {
				if at(i, k).Sign() != 0 {
					p = i
					break
				}
			}
			if p < 0 {
				return 0
			}
			for j := 0; j < n; j++ {
				w[k*n+j], w[p*n+j] = w[p*n+j], w[k*n+j]
			}
			sign = -sign
		}
		pkk := new(big.Int).Set(at(k, k))
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				t1.Mul(at(i, j), pkk)
				t2.Mul(at(i, k), at(k, j))
				num.Sub(&t1, &t2)
				at(i, j).Quo(&num, prev)
			}
			at(i, k).SetInt64(0)
		}
		prev.Set(pkk)
	}
	d := at(n-1, n-1)
	if !d.IsInt64() {
		overflow("detBig result")
	}
	if sign < 0 {
		return -d.Int64()
	}
	return d.Int64()
}
