package intmat

import "fmt"

// This file provides the in-place ("Into") counterparts of the
// allocating Matrix API. Each writes its result into caller-provided
// storage — typically arena-backed (see arena.go) — and returns it; the
// allocating methods in matrix.go and decomp.go are thin wrappers that
// pass freshly made storage. Destination arguments must not alias any
// input unless a function documents otherwise; all arithmetic is
// overflow-checked and panics with *OverflowError exactly like the
// allocating API.

// shapeInto validates that dst exists and has the required shape.
func shapeInto(op string, dst *Matrix, rows, cols int) {
	if dst == nil {
		panic(fmt.Sprintf("intmat: %s into nil matrix", op))
	}
	if dst.rows != rows || dst.cols != cols {
		panic(fmt.Sprintf("intmat: %s into %dx%d matrix, want %dx%d", op, dst.rows, dst.cols, rows, cols))
	}
}

// MulInto computes dst = m·o and returns dst. dst must be m.Rows() ×
// o.Cols() and must not alias m or o.
func MulInto(dst, m, o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("intmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	shapeInto("MulInto", dst, m.rows, o.cols)
	for i := range dst.a {
		dst.a[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.a[i*m.cols+k]
			if mik == 0 {
				continue
			}
			for j := 0; j < o.cols; j++ {
				dst.a[i*dst.cols+j] = addChecked(dst.a[i*dst.cols+j], mulChecked(mik, o.a[k*o.cols+j]))
			}
		}
	}
	return dst
}

// MulVecInto computes dst = m·v (v as a column vector) and returns dst.
// dst must have length m.Rows() and must not alias v.
func MulVecInto(dst Vector, m *Matrix, v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("intmat: MulVec shape mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("intmat: MulVecInto length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		var s int64
		for j := 0; j < m.cols; j++ {
			s = addChecked(s, mulChecked(m.a[i*m.cols+j], v[j]))
		}
		dst[i] = s
	}
	return dst
}

// VecMulInto computes dst = v·m (v as a row vector) and returns dst.
// dst must have length m.Cols() and must not alias v.
func VecMulInto(dst Vector, v Vector, m *Matrix) Vector {
	if m.rows != len(v) {
		panic(fmt.Sprintf("intmat: VecMul shape mismatch %d · %dx%d", len(v), m.rows, m.cols))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("intmat: VecMulInto length %d, want %d", len(dst), m.cols))
	}
	for j := 0; j < m.cols; j++ {
		var s int64
		for i := 0; i < m.rows; i++ {
			s = addChecked(s, mulChecked(v[i], m.a[i*m.cols+j]))
		}
		dst[j] = s
	}
	return dst
}

// AddInto computes dst = m + o entrywise and returns dst. dst may alias
// m or o (the update is elementwise).
func AddInto(dst, m, o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic("intmat: Add shape mismatch")
	}
	shapeInto("AddInto", dst, m.rows, m.cols)
	for i := range dst.a {
		dst.a[i] = addChecked(m.a[i], o.a[i])
	}
	return dst
}

// SubInto computes dst = m - o entrywise and returns dst. dst may alias
// m or o.
func SubInto(dst, m, o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic("intmat: Sub shape mismatch")
	}
	shapeInto("SubInto", dst, m.rows, m.cols)
	for i := range dst.a {
		dst.a[i] = subChecked(m.a[i], o.a[i])
	}
	return dst
}

// ScaleInto computes dst = c·m and returns dst. dst may alias m.
func ScaleInto(dst *Matrix, m *Matrix, c int64) *Matrix {
	shapeInto("ScaleInto", dst, m.rows, m.cols)
	for i := range dst.a {
		dst.a[i] = mulChecked(c, m.a[i])
	}
	return dst
}

// TransposeInto computes dst = mᵀ and returns dst. dst must not alias m.
func TransposeInto(dst, m *Matrix) *Matrix {
	shapeInto("TransposeInto", dst, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			dst.a[j*dst.cols+i] = m.a[i*m.cols+j]
		}
	}
	return dst
}

// SubmatrixInto writes the listed rows and columns of m into dst and
// returns dst. dst must be len(rows)×len(cols) and must not alias m.
func SubmatrixInto(dst, m *Matrix, rows, cols []int) *Matrix {
	shapeInto("SubmatrixInto", dst, len(rows), len(cols))
	for i, ri := range rows {
		for j, cj := range cols {
			dst.a[i*dst.cols+j] = m.At(ri, cj)
		}
	}
	return dst
}

// minorInto writes m with row di and column dj removed into dst — the
// cofactor minor — without the index-slice allocations of DeleteRowCol.
func minorInto(dst, m *Matrix, di, dj int) *Matrix {
	shapeInto("minorInto", dst, m.rows-1, m.cols-1)
	r := 0
	for i := 0; i < m.rows; i++ {
		if i == di {
			continue
		}
		c := 0
		for j := 0; j < m.cols; j++ {
			if j == dj {
				continue
			}
			dst.a[r*dst.cols+c] = m.a[i*m.cols+j]
			c++
		}
		r++
	}
	return dst
}

// detDestructive computes the determinant of w by fraction-free Bareiss
// elimination, destroying w's contents. It panics with *OverflowError
// when an intermediate value overflows (the caller decides whether to
// fall back to arbitrary precision).
func (w *Matrix) detDestructive() int64 {
	n := w.rows
	if n != w.cols {
		panic(fmt.Sprintf("intmat: Det of non-square %dx%d matrix", w.rows, w.cols))
	}
	if n == 0 {
		return 1
	}
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if w.a[k*n+k] == 0 {
			p := -1
			for i := k + 1; i < n; i++ {
				if w.a[i*n+k] != 0 {
					p = i
					break
				}
			}
			if p < 0 {
				return 0
			}
			w.swapRows(k, p)
			sign = -sign
		}
		pkk := w.a[k*n+k]
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := subChecked(mulChecked(w.a[i*n+j], pkk), mulChecked(w.a[i*n+k], w.a[k*n+j]))
				w.a[i*n+j] = num / prev
			}
			w.a[i*n+k] = 0
		}
		prev = pkk
	}
	return mulChecked(sign, w.a[(n-1)*n+(n-1)])
}

// DetIn computes det(m) using arena-backed scratch for the elimination
// working copy (heap scratch when ar is nil). Like Det it transparently
// falls back to arbitrary precision when the int64 Bareiss intermediates
// overflow, and panics with *OverflowError only if the determinant
// itself does not fit.
func DetIn(ar *Arena, m *Matrix) int64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("intmat: Det of non-square %dx%d matrix", m.rows, m.cols))
	}
	var w *Matrix
	if ar != nil {
		w = ar.Mat(m.rows, m.cols)
	} else {
		w = New(m.rows, m.cols)
	}
	copy(w.a, m.a)
	if d, ok := detDestructiveTry(w); ok {
		return d
	}
	return m.detBig()
}

// detDestructiveTry runs detDestructive, reporting ok = false on int64
// overflow instead of panicking.
func detDestructiveTry(w *Matrix) (d int64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isOverflow := r.(*OverflowError); isOverflow {
				ok = false
				return
			}
			panic(r)
		}
	}()
	return w.detDestructive(), true
}

// AdjugateInto computes the adjugate of the square matrix m into dst
// and returns dst, using arena-backed scratch for the cofactor minors
// (heap scratch when ar is nil). dst must be the same shape as m and
// must not alias it.
func AdjugateInto(dst *Matrix, ar *Arena, m *Matrix) *Matrix {
	if m.rows != m.cols {
		panic("intmat: Adjugate of non-square matrix")
	}
	n := m.rows
	shapeInto("AdjugateInto", dst, n, n)
	if n == 0 {
		return dst
	}
	var minor *Matrix
	if ar != nil {
		minor = ar.Mat(n-1, n-1)
	} else {
		minor = New(n-1, n-1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			minorInto(minor, m, i, j)
			d, ok := detDestructiveTry(minor)
			if !ok {
				// Intermediates overflowed: recompute this minor in
				// arbitrary precision (the minor was destroyed, refill it).
				d = minorInto(minor, m, i, j).detBig()
			}
			if (i+j)%2 != 0 {
				d = negChecked(d)
			}
			dst.a[j*n+i] = d
		}
	}
	return dst
}
