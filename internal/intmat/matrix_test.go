package intmat

import (
	"strings"
	"testing"
)

func TestNewAndAtSet(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Errorf("At(1,2) = %d, want 42", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %d, want 0", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows(
		[]int64{1, 2},
		[]int64{3, 4},
		[]int64{5, 6},
	)
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Errorf("entries wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([]int64{1, 2}, []int64{3})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := int64(0)
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("I[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([]int64{1, 2}, []int64{3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestRowColAccessors(t *testing.T) {
	m := FromRows([]int64{1, 2, 3}, []int64{4, 5, 6})
	if !m.Row(1).Equal(Vec(4, 5, 6)) {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
	if !m.Col(2).Equal(Vec(3, 6)) {
		t.Errorf("Col(2) = %v", m.Col(2))
	}
	m.SetRow(0, Vec(7, 8, 9))
	if !m.Row(0).Equal(Vec(7, 8, 9)) {
		t.Errorf("after SetRow, Row(0) = %v", m.Row(0))
	}
	m.SetCol(1, Vec(10, 11))
	if !m.Col(1).Equal(Vec(10, 11)) {
		t.Errorf("after SetCol, Col(1) = %v", m.Col(1))
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([]int64{1, 2, 3}, []int64{4, 5, 6})
	mt := m.Transpose()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows(), mt.Cols())
	}
	if !mt.Transpose().Equal(m) {
		t.Error("double transpose differs from original")
	}
	if mt.At(2, 1) != 6 {
		t.Errorf("transpose entry wrong: %v", mt)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([]int64{1, 2}, []int64{3, 4})
	b := FromRows([]int64{5, 6}, []int64{7, 8})
	want := FromRows([]int64{19, 22}, []int64{43, 50})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("Mul =\n%v\nwant\n%v", got, want)
	}
	id := Identity(2)
	if !a.Mul(id).Equal(a) || !id.Mul(a).Equal(a) {
		t.Error("identity multiplication altered the matrix")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	m := FromRows([]int64{1, 2, 3}, []int64{4, 5, 6})
	if got := m.MulVec(Vec(1, 0, -1)); !got.Equal(Vec(-2, -2)) {
		t.Errorf("MulVec = %v", got)
	}
	if got := m.VecMul(Vec(1, -1)); !got.Equal(Vec(-3, -3, -3)) {
		t.Errorf("VecMul = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([]int64{1, 2}, []int64{3, 4})
	b := FromRows([]int64{10, 20}, []int64{30, 40})
	if got := a.Add(b); !got.Equal(FromRows([]int64{11, 22}, []int64{33, 44})) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(FromRows([]int64{9, 18}, []int64{27, 36})) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(-1); !got.Equal(a.Neg()) {
		t.Errorf("Scale(-1) != Neg: %v", got)
	}
}

func TestSubmatrixAndDeleteRowCol(t *testing.T) {
	m := FromRows(
		[]int64{1, 2, 3},
		[]int64{4, 5, 6},
		[]int64{7, 8, 9},
	)
	s := m.Submatrix([]int{0, 2}, []int{1, 2})
	if !s.Equal(FromRows([]int64{2, 3}, []int64{8, 9})) {
		t.Errorf("Submatrix = %v", s)
	}
	d := m.DeleteRowCol(1, 1)
	if !d.Equal(FromRows([]int64{1, 3}, []int64{7, 9})) {
		t.Errorf("DeleteRowCol = %v", d)
	}
}

func TestStacking(t *testing.T) {
	a := FromRows([]int64{1, 2})
	b := FromRows([]int64{3, 4})
	h := a.HStack(b)
	if !h.Equal(FromRows([]int64{1, 2, 3, 4})) {
		t.Errorf("HStack = %v", h)
	}
	v := a.VStack(b)
	if !v.Equal(FromRows([]int64{1, 2}, []int64{3, 4})) {
		t.Errorf("VStack = %v", v)
	}
	ar := a.AppendRow(Vec(9, 9))
	if !ar.Equal(FromRows([]int64{1, 2}, []int64{9, 9})) {
		t.Errorf("AppendRow = %v", ar)
	}
}

func TestIsZero(t *testing.T) {
	if !New(2, 2).IsZero() {
		t.Error("zero matrix reported non-zero")
	}
	m := New(2, 2)
	m.Set(1, 1, 1)
	if m.IsZero() {
		t.Error("non-zero matrix reported zero")
	}
}

func TestMatrixString(t *testing.T) {
	m := FromRows([]int64{1, -20}, []int64{300, 4})
	s := m.String()
	if !strings.Contains(s, "300") || !strings.Contains(s, "-20") {
		t.Errorf("String output missing entries: %q", s)
	}
	if lines := strings.Split(s, "\n"); len(lines) != 2 {
		t.Errorf("String produced %d lines, want 2", len(lines))
	}
}
