package intmat

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major integer matrix.
type Matrix struct {
	rows, cols int
	a          []int64
}

// New returns a zero matrix with the given shape. It panics if either
// dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("intmat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have the same
// length. An empty argument list yields the 0x0 matrix.
func FromRows(rows ...[]int64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("intmat: ragged rows: row %d has %d entries, want %d", i, len(r), cols))
		}
		copy(m.a[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) int64 {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m *Matrix) Set(i, j int, v int64) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("intmat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Equal reports whether m and o have the same shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != o.a[i] {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	m.check(i, 0)
	r := make(Vector, m.cols)
	copy(r, m.a[i*m.cols:(i+1)*m.cols])
	return r
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	m.check(0, j)
	c := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		c[i] = m.a[i*m.cols+j]
	}
	return c
}

// SetRow overwrites row i with v.
func (m *Matrix) SetRow(i int, v Vector) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("intmat: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.a[i*m.cols:(i+1)*m.cols], v)
}

// SetCol overwrites column j with v.
func (m *Matrix) SetCol(j int, v Vector) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("intmat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.a[i*m.cols+j] = v[i]
	}
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	return TransposeInto(New(m.cols, m.rows), m)
}

// Mul returns the matrix product m·o. It panics on shape mismatch and
// with *OverflowError on int64 overflow.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("intmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	return MulInto(New(m.rows, o.cols), m, o)
}

// MulVec returns the matrix-vector product m·v (v as a column vector).
func (m *Matrix) MulVec(v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("intmat: MulVec shape mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	return MulVecInto(make(Vector, m.rows), m, v)
}

// VecMul returns the vector-matrix product v·m (v as a row vector).
func (m *Matrix) VecMul(v Vector) Vector {
	if m.rows != len(v) {
		panic(fmt.Sprintf("intmat: VecMul shape mismatch %d · %dx%d", len(v), m.rows, m.cols))
	}
	return VecMulInto(make(Vector, m.cols), v, m)
}

// Add returns m + o entrywise.
func (m *Matrix) Add(o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic("intmat: Add shape mismatch")
	}
	return AddInto(New(m.rows, m.cols), m, o)
}

// Sub returns m - o entrywise.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic("intmat: Sub shape mismatch")
	}
	return SubInto(New(m.rows, m.cols), m, o)
}

// Scale returns c·m.
func (m *Matrix) Scale(c int64) *Matrix {
	return ScaleInto(New(m.rows, m.cols), m, c)
}

// Neg returns -m.
func (m *Matrix) Neg() *Matrix { return m.Scale(-1) }

// IsZero reports whether all entries are zero.
func (m *Matrix) IsZero() bool {
	for _, v := range m.a {
		if v != 0 {
			return false
		}
	}
	return true
}

// Submatrix returns the matrix consisting of the listed rows and columns
// of m, in the given order. Indices may repeat.
func (m *Matrix) Submatrix(rows, cols []int) *Matrix {
	s := New(len(rows), len(cols))
	for i, ri := range rows {
		for j, cj := range cols {
			s.Set(i, j, m.At(ri, cj))
		}
	}
	return s
}

// DeleteRowCol returns m with row i and column j removed — the minor
// matrix used for cofactor expansion.
func (m *Matrix) DeleteRowCol(i, j int) *Matrix {
	rows := make([]int, 0, m.rows-1)
	for r := 0; r < m.rows; r++ {
		if r != i {
			rows = append(rows, r)
		}
	}
	cols := make([]int, 0, m.cols-1)
	for c := 0; c < m.cols; c++ {
		if c != j {
			cols = append(cols, c)
		}
	}
	return m.Submatrix(rows, cols)
}

// HStack returns [m | o], the horizontal concatenation.
func (m *Matrix) HStack(o *Matrix) *Matrix {
	if m.rows != o.rows {
		panic("intmat: HStack row mismatch")
	}
	r := New(m.rows, m.cols+o.cols)
	for i := 0; i < m.rows; i++ {
		copy(r.a[i*r.cols:], m.a[i*m.cols:(i+1)*m.cols])
		copy(r.a[i*r.cols+m.cols:], o.a[i*o.cols:(i+1)*o.cols])
	}
	return r
}

// VStack returns [m ; o], the vertical concatenation.
func (m *Matrix) VStack(o *Matrix) *Matrix {
	if m.cols != o.cols {
		panic("intmat: VStack column mismatch")
	}
	r := New(m.rows+o.rows, m.cols)
	copy(r.a, m.a)
	copy(r.a[m.rows*m.cols:], o.a)
	return r
}

// AppendRow returns m with v appended as a final row.
func (m *Matrix) AppendRow(v Vector) *Matrix {
	if m.cols != len(v) && !(m.rows == 0 && m.cols == 0) {
		panic(fmt.Sprintf("intmat: AppendRow length %d, want %d", len(v), m.cols))
	}
	if m.rows == 0 && m.cols == 0 {
		return FromRows(v)
	}
	r := New(m.rows+1, m.cols)
	copy(r.a, m.a)
	copy(r.a[m.rows*m.cols:], v)
	return r
}

// String formats the matrix over multiple lines with aligned columns.
func (m *Matrix) String() string {
	if m.rows == 0 || m.cols == 0 {
		return fmt.Sprintf("[%dx%d]", m.rows, m.cols)
	}
	width := make([]int, m.cols)
	cells := make([]string, len(m.a))
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			s := fmt.Sprintf("%d", m.a[i*m.cols+j])
			cells[i*m.cols+j] = s
			if len(s) > width[j] {
				width[j] = len(s)
			}
		}
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%*s", width[j], cells[i*m.cols+j])
		}
		b.WriteString("]")
		if i != m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
