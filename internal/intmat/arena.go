package intmat

import "sync"

// This file provides the bump allocator behind the in-place ("Into")
// variants of the package's hot operations. The optimizers decide
// conflict-freeness for thousands of candidate mappings per search, and
// every decision needs a handful of short-lived vectors and small
// matrices; allocating them from the Go heap made the allocator — not
// the arithmetic — the dominant cost of Procedure 5.1 (see DESIGN.md
// §11). An Arena hands out slices from large reusable blocks instead:
// the caller Resets it between candidates (or searches) and steady-state
// evaluation touches the heap not at all.
//
// Ownership discipline (enforced by convention, documented in DESIGN.md
// §11): memory returned by an Arena is valid until the next Reset of
// that Arena. Anything that must outlive the Reset — a witness vector
// stored in a cache, a winning result returned to a caller — must be
// cloned to the heap first. Arenas are not safe for concurrent use; the
// search engines keep one per worker goroutine.

// arenaBlockInts is the minimum capacity (in int64 words) of one arena
// block. The conflict-decision working set for an n-dimensional
// algorithm is O(n²) words, so a single block serves every realistic
// candidate without growth.
const arenaBlockInts = 4096

// Arena is a region allocator for int64 scratch. The zero value is
// ready to use.
type Arena struct {
	blocks [][]int64
	bi     int // index of the block being bumped
	off    int // offset within blocks[bi]

	// mats is a slab of reusable Matrix headers, so Mat does not
	// heap-allocate a header per call in steady state.
	mats []Matrix
	mi   int
}

// Alloc returns a zeroed slice of n int64 words backed by the arena.
// The slice is valid until Reset; its capacity equals its length, so an
// append never bleeds into a neighbouring allocation.
func (ar *Arena) Alloc(n int) []int64 {
	for {
		if ar.bi < len(ar.blocks) {
			b := ar.blocks[ar.bi]
			if ar.off+n <= len(b) {
				s := b[ar.off : ar.off+n : ar.off+n]
				ar.off += n
				for i := range s {
					s[i] = 0
				}
				return s
			}
			ar.bi++
			ar.off = 0
			continue
		}
		sz := arenaBlockInts
		if n > sz {
			sz = n
		}
		ar.blocks = append(ar.blocks, make([]int64, sz))
	}
}

// Vec returns a zeroed Vector of length n backed by the arena.
func (ar *Arena) Vec(n int) Vector { return Vector(ar.Alloc(n)) }

// Mat returns a zeroed rows×cols matrix backed by the arena. The header
// comes from a reusable slab, so steady-state calls allocate nothing.
func (ar *Arena) Mat(rows, cols int) *Matrix {
	if ar.mi == len(ar.mats) {
		ar.mats = append(ar.mats, Matrix{})
	}
	m := &ar.mats[ar.mi]
	ar.mi++
	m.rows, m.cols = rows, cols
	m.a = ar.Alloc(rows * cols)
	return m
}

// Identity returns the n×n identity matrix backed by the arena.
func (ar *Arena) Identity(n int) *Matrix {
	m := ar.Mat(n, n)
	for i := 0; i < n; i++ {
		m.a[i*n+i] = 1
	}
	return m
}

// Reset makes every previous allocation reclaimable without returning
// memory to the Go heap. It must only be called when no live data
// references the arena (see the ownership discipline above).
func (ar *Arena) Reset() {
	ar.bi, ar.off, ar.mi = 0, 0, 0
}

// arenaPool recycles arenas across searches, so short-lived engines
// (one service request, one CLI run) still hit warmed blocks.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns a reset arena from the package pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena resets ar and returns it to the package pool. The caller
// must not use ar afterwards.
func PutArena(ar *Arena) {
	ar.Reset()
	arenaPool.Put(ar)
}
