package intmat

import "testing"

// Allocation-budget gates for the arena-backed hot paths. These run as
// part of the ordinary test suite, so an allocation regression fails
// `go test` — not just a benchmark someone has to read. They skip under
// the race detector, whose instrumentation allocates.

func requireAllocs(t *testing.T, want float64, name string, f func()) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	f() // warm up pools, arena blocks, and header slabs
	if got := testing.AllocsPerRun(100, f); got > want {
		t.Fatalf("%s allocated %.1f objects/op, budget %.1f", name, got, want)
	}
}

func TestMulIntoAllocFree(t *testing.T) {
	m := FromRows([]int64{1, 2, 3}, []int64{4, 5, 6}, []int64{7, 8, 10})
	o := FromRows([]int64{2, 0, 1}, []int64{1, 3, 0}, []int64{0, 1, 4})
	dst := New(3, 3)
	requireAllocs(t, 0, "MulInto", func() {
		MulInto(dst, m, o)
	})
}

func TestHNFIntoAllocFree(t *testing.T) {
	m := FromRows([]int64{1, 1, -1, 2}, []int64{0, 3, 5, -1})
	ar := GetArena()
	defer PutArena(ar)
	var h HNF
	requireAllocs(t, 0, "HNFInto(arena)", func() {
		ar.Reset()
		if err := HNFInto(&h, m, ar); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSmithIntoAllocFree(t *testing.T) {
	m := FromRows([]int64{2, 4, 4}, []int64{-6, 6, 12}, []int64{10, 4, 16})
	ar := GetArena()
	defer PutArena(ar)
	var s SNF
	requireAllocs(t, 0, "SmithNormalFormInto(arena)", func() {
		ar.Reset()
		if err := SmithNormalFormInto(&s, m, ar); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRowNullBasisAppendAllocFree(t *testing.T) {
	h := Vec(3, -5, 7, 2)
	ar := GetArena()
	defer PutArena(ar)
	scratch := make([]Vector, 0, 8)
	requireAllocs(t, 0, "RowNullBasisAppend(arena)", func() {
		ar.Reset()
		bs, err := RowNullBasisAppend(scratch[:0], ar, h)
		if err != nil || len(bs) != 3 {
			t.Fatalf("bs=%v err=%v", bs, err)
		}
	})
}

func TestAdjugateIntoAllocFree(t *testing.T) {
	m := FromRows([]int64{2, 1, 0}, []int64{-1, 3, 2}, []int64{4, 0, 5})
	dst := New(3, 3)
	ar := GetArena()
	defer PutArena(ar)
	requireAllocs(t, 0, "AdjugateInto(arena)", func() {
		ar.Reset()
		AdjugateInto(dst, ar, m)
	})
}
