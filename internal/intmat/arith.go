package intmat

import (
	"fmt"
	"math"
)

// OverflowError reports that an exact integer computation exceeded the
// range of int64. It is delivered by panic from the low-level checked
// arithmetic helpers and converted to an ordinary error by Guard.
type OverflowError struct {
	Op string // the operation that overflowed, e.g. "mul"
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("intmat: int64 overflow in %s", e.Op)
}

// Guard converts an *OverflowError panic raised inside f into an error.
// Any other panic is re-raised. It is the boundary adapter used by the
// exported error-returning entry points of this package and its clients:
//
//	func Det(m *Matrix) (d int64, err error) {
//		defer intmat.Guard(&err)
//		d = m.Det()
//		return d, nil
//	}
func Guard(err *error) {
	if r := recover(); r != nil {
		if oe, ok := r.(*OverflowError); ok {
			*err = oe
			return
		}
		panic(r)
	}
}

func overflow(op string) {
	panic(&OverflowError{Op: op})
}

// AddChecked returns a+b, panicking with *OverflowError on overflow.
// Pair with Guard at an error-returning boundary.
func AddChecked(a, b int64) int64 { return addChecked(a, b) }

// MulChecked returns a*b, panicking with *OverflowError on overflow.
// Pair with Guard at an error-returning boundary.
func MulChecked(a, b int64) int64 { return mulChecked(a, b) }

// AbsChecked returns |a|, panicking with *OverflowError when a is
// MinInt64. Pair with Guard at an error-returning boundary.
func AbsChecked(a int64) int64 { return absChecked(a) }

// addChecked returns a+b, panicking with *OverflowError on overflow.
func addChecked(a, b int64) int64 {
	s := a + b
	// Overflow iff a and b share a sign and s does not.
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		overflow("add")
	}
	return s
}

// subChecked returns a-b, panicking with *OverflowError on overflow.
func subChecked(a, b int64) int64 {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		overflow("sub")
	}
	return d
}

// mulChecked returns a*b, panicking with *OverflowError on overflow.
func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		overflow("mul")
	}
	return p
}

// negChecked returns -a, panicking with *OverflowError when a is MinInt64.
func negChecked(a int64) int64 {
	if a == math.MinInt64 {
		overflow("neg")
	}
	return -a
}

// absChecked returns |a|, panicking with *OverflowError when a is MinInt64.
func absChecked(a int64) int64 {
	if a < 0 {
		return negChecked(a)
	}
	return a
}

// GCD returns the non-negative greatest common divisor of a and b, with
// GCD(0, 0) = 0.
func GCD(a, b int64) int64 {
	a, b = absChecked(a), absChecked(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the non-negative greatest common divisor of all values.
// GCDAll() and GCDAll(0, …, 0) are 0.
func GCDAll(vs ...int64) int64 {
	var g int64
	for _, v := range vs {
		g = GCD(g, v)
		if g == 1 {
			return 1
		}
	}
	return g
}

// LCM returns the non-negative least common multiple of a and b, with
// LCM(x, 0) = 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	return mulChecked(absChecked(a)/g, absChecked(b))
}

// ExtGCD returns g = gcd(a, b) ≥ 0 together with Bézout coefficients
// x, y such that a*x + b*y = g. The coefficients are normalized to the
// minimal-|x| representative (|x| ≤ |b|/(2g) when b ≠ 0), which keeps
// the unimodular transforms built from them small. ExtGCD(0, 0)
// returns (0, 0, 0).
func ExtGCD(a, b int64) (g, x, y int64) {
	// Iterative extended Euclid on absolute values, signs fixed up at the end.
	sa, sb := int64(1), int64(1)
	aa, bb := a, b
	if aa < 0 {
		sa, aa = -1, negChecked(aa)
	}
	if bb < 0 {
		sb, bb = -1, negChecked(bb)
	}
	x0, x1 := int64(1), int64(0)
	y0, y1 := int64(0), int64(1)
	for bb != 0 {
		q := aa / bb
		aa, bb = bb, aa-q*bb
		x0, x1 = x1, subChecked(x0, mulChecked(q, x1))
		y0, y1 = y1, subChecked(y0, mulChecked(q, y1))
	}
	g, x, y = aa, sa*x0, sb*y0
	// Minimality normalization: x' = x - t·(b/g), y' = y + t·(a/g).
	if g != 0 && b != 0 {
		bg, ag := b/g, a/g
		t := roundDiv(x, bg)
		if t != 0 {
			x = subChecked(x, mulChecked(t, bg))
			y = addChecked(y, mulChecked(t, ag))
		}
	}
	return g, x, y
}

// roundDiv returns the integer nearest to a/d (ties away from zero),
// for d ≠ 0.
func roundDiv(a, d int64) int64 {
	ad := absChecked(d)
	half := ad / 2
	if a >= 0 {
		return addChecked(a, half) / d
	}
	return subChecked(a, half) / d
}
