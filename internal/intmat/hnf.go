package intmat

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrRankDeficient is returned by HermiteNormalForm when the input does
// not have full row rank, which the decomposition TU = [L, 0] with L
// nonsingular requires (Theorem 4.1 of the paper assumes rank(T) = k).
var ErrRankDeficient = errors.New("intmat: matrix does not have full row rank")

// HNF is the Hermite normal form decomposition of a full-row-rank
// integer matrix T ∈ Z^{k×n}:
//
//	T · U = H = [L, 0]
//
// where U ∈ Z^{n×n} is unimodular and L ∈ Z^{k×k} is lower triangular
// and nonsingular with positive diagonal (the paper's Theorem 4.1). The
// columns u_{k+1}, …, u_n of U (0-based: columns k…n-1) form a basis of
// the integer null space of T: by Theorem 4.2 every conflict vector of a
// mapping matrix T is an integral, relatively-prime combination of them.
type HNF struct {
	// T is the decomposed matrix (not copied; callers must not mutate it).
	T *Matrix
	// H = T·U = [L, 0].
	H *Matrix
	// U is the unimodular right multiplier.
	U *Matrix

	v *Matrix // cached U^{-1}
}

// HermiteNormalForm computes the column-style Hermite normal form of t.
// It returns ErrRankDeficient if rank(t) < t.Rows(), and an
// *OverflowError if an entry of the result exceeds int64. The
// computation first runs an overflow-checked int64 elimination (the
// common case for the small mapping matrices of the search engines) and
// falls back to arbitrary precision when an intermediate overflows, so
// only genuinely oversized results are rejected.
func HermiteNormalForm(t *Matrix) (*HNF, error) {
	h := &HNF{}
	if err := HNFInto(h, t, nil); err != nil {
		return nil, err
	}
	return h, nil
}

// HNFInto computes the Hermite normal form of t into h, reusing h's
// matrices when their shapes match (or drawing fresh ones from ar when
// it is non-nil, in which case h.H and h.U obey the arena's lifetime —
// valid until ar.Reset). The int64 fast path mirrors the
// arbitrary-precision elimination operation for operation, so the two
// produce identical decompositions; on intermediate overflow the big
// path rebuilds the result on the heap regardless of ar.
func HNFInto(h *HNF, t *Matrix, ar *Arena) error {
	k, n := t.Rows(), t.Cols()
	if k > n {
		return fmt.Errorf("intmat: HermiteNormalForm of %dx%d matrix: more rows than columns implies rank deficiency: %w", k, n, ErrRankDeficient)
	}
	h.T = t
	h.v = nil
	H := intoMat(h.H, ar, k, n)
	U := intoMat(h.U, ar, n, n)
	copy(H.a, t.a)
	for i := range U.a {
		U.a[i] = 0
	}
	for i := 0; i < n; i++ {
		U.a[i*n+i] = 1
	}
	ok, rankDeficient := hnfFastInt64(H, U, k, n)
	if ok {
		if rankDeficient {
			return ErrRankDeficient
		}
		h.H, h.U = H, U
		return nil
	}
	// An int64 intermediate overflowed: redo in arbitrary precision. The
	// big path replays the identical operation sequence, so it yields the
	// same decomposition whenever the final entries fit in int64.
	hb, err := hermiteNormalFormBig(t)
	if err != nil {
		return err
	}
	h.H, h.U = hb.H, hb.U
	return nil
}

// intoMat picks destination storage for an Into-style decomposition:
// arena-backed when ar is non-nil, otherwise prev when its shape already
// matches, otherwise a fresh heap matrix.
func intoMat(prev *Matrix, ar *Arena, rows, cols int) *Matrix {
	if ar != nil {
		return ar.Mat(rows, cols)
	}
	if prev != nil && prev.rows == rows && prev.cols == cols {
		return prev
	}
	return New(rows, cols)
}

// hnfFastInt64 runs the column elimination on H and U in checked int64.
// ok is false when an intermediate overflowed (H and U are then
// partially transformed garbage and the caller must fall back);
// rankDeficient reports a zero row, which the identical big-path
// replay would detect at the same step.
func hnfFastInt64(H, U *Matrix, k, n int) (ok, rankDeficient bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isOverflow := r.(*OverflowError); isOverflow {
				ok = false
				return
			}
			panic(r)
		}
	}()
	for r := 0; r < k; r++ {
		// Bring a non-zero entry to the pivot position (r, r) using the
		// columns at or to the right of r.
		if H.a[r*n+r] == 0 {
			p := -1
			for j := r + 1; j < n; j++ {
				if H.a[r*n+j] != 0 {
					p = j
					break
				}
			}
			if p < 0 {
				return true, true
			}
			H.swapCols(r, p)
			U.swapCols(r, p)
		}
		// Zero out the rest of row r with extended-Euclid column combos.
		for j := r + 1; j < n; j++ {
			b := H.a[r*n+j]
			if b == 0 {
				continue
			}
			a := H.a[r*n+r]
			g, x, y := ExtGCD(a, b)
			// [col_r col_j] ← [x·col_r + y·col_j, -(b/g)·col_r + (a/g)·col_j].
			u := negChecked(b / g)
			v := a / g
			H.combineCols(r, j, x, y, u, v)
			U.combineCols(r, j, x, y, u, v)
		}
		// Normalize the pivot sign.
		if H.a[r*n+r] < 0 {
			H.negCol(r)
			U.negCol(r)
		}
		// Reduce the entries left of the diagonal in row r modulo the
		// pivot.
		d := H.a[r*n+r]
		for j := 0; j < r; j++ {
			q := floorDiv(H.a[r*n+j], d)
			if q != 0 {
				H.addColMultiple(j, r, negChecked(q))
				U.addColMultiple(j, r, negChecked(q))
			}
		}
	}
	U.sizeReduce(k)
	return true, false
}

// colDotChecked returns the inner product of columns i and j in checked
// int64.
func (m *Matrix) colDotChecked(i, j int) int64 {
	var s int64
	for r := 0; r < m.rows; r++ {
		s = addChecked(s, mulChecked(m.a[r*m.cols+i], m.a[r*m.cols+j]))
	}
	return s
}

// sizeReduce is the checked-int64 mirror of bigMatrix.sizeReduce; see
// that function for the rationale. The sweep limits and reduction order
// match exactly so the two paths stay byte-equal.
func (m *Matrix) sizeReduce(k int) {
	n := m.cols
	if k >= n {
		return
	}
	// Phase 1: pairwise reduction of the null columns until fixpoint.
	for sweep := 0; sweep < 64; sweep++ {
		changed := false
		for p := k; p < n; p++ {
			pp := m.colDotChecked(p, p)
			if pp == 0 {
				continue
			}
			for q := k; q < n; q++ {
				if p == q {
					continue
				}
				t := roundDiv(m.colDotChecked(q, p), pp)
				if t != 0 {
					m.addColMultiple(q, p, negChecked(t))
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: reduce the pivot columns against the null lattice.
	for sweep := 0; sweep < 8; sweep++ {
		changed := false
		for p := k; p < n; p++ {
			pp := m.colDotChecked(p, p)
			if pp == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				t := roundDiv(m.colDotChecked(j, p), pp)
				if t != 0 {
					m.addColMultiple(j, p, negChecked(t))
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// hermiteNormalFormBig is the arbitrary-precision reference elimination.
// It is both the overflow fallback of HNFInto and the oracle the
// differential tests compare the int64 fast path against.
func hermiteNormalFormBig(t *Matrix) (h *HNF, err error) {
	defer Guard(&err)
	k, n := t.Rows(), t.Cols()
	if k > n {
		return nil, fmt.Errorf("intmat: HermiteNormalForm of %dx%d matrix: more rows than columns implies rank deficiency: %w", k, n, ErrRankDeficient)
	}
	H := newBigMatrix(t)
	U := newBigIdentity(n)
	for r := 0; r < k; r++ {
		// Bring a non-zero entry to the pivot position (r, r) using the
		// columns at or to the right of r.
		if H.at(r, r).Sign() == 0 {
			p := -1
			for j := r + 1; j < n; j++ {
				if H.at(r, j).Sign() != 0 {
					p = j
					break
				}
			}
			if p < 0 {
				return nil, ErrRankDeficient
			}
			H.swapCols(r, p)
			U.swapCols(r, p)
		}
		// Zero out the rest of row r with extended-Euclid column combos:
		// each step replaces (col_r, col_j) by a unimodular combination
		// that leaves gcd(a, b) at (r, r) and 0 at (r, j).
		for j := r + 1; j < n; j++ {
			b := H.at(r, j)
			if b.Sign() == 0 {
				continue
			}
			a := H.at(r, r)
			g, x, y := bigExtGCD(a, b)
			// [col_r col_j] ← [x·col_r + y·col_j, -(b/g)·col_r + (a/g)·col_j];
			// the 2×2 transform has determinant (x·a + y·b)/g = 1.
			u := new(big.Int).Quo(b, g)
			u.Neg(u)
			v := new(big.Int).Quo(a, g)
			H.combineCols(r, j, x, y, u, v)
			U.combineCols(r, j, x, y, u, v)
		}
		// Normalize the pivot sign.
		if H.at(r, r).Sign() < 0 {
			H.negCol(r)
			U.negCol(r)
		}
		// Reduce the entries left of the diagonal in row r modulo the
		// pivot, keeping all U entries small. Column r is zero above row
		// r, so triangularity of the leading block is preserved.
		d := H.at(r, r)
		for j := 0; j < r; j++ {
			q := bigFloorDiv(H.at(r, j), d)
			if q.Sign() != 0 {
				q.Neg(q)
				H.addColMultiple(j, r, q)
				U.addColMultiple(j, r, q)
			}
		}
	}
	U.sizeReduce(k)
	return &HNF{T: t, H: H.toMatrix(), U: U.toMatrix()}, nil
}

// RowNullBasis returns a lattice basis of {a ∈ Z^q : h·a = 0} for a
// single non-zero row h — the q = 1 special case of the Hermite normal
// form, computed entirely in overflow-checked int64 (with a big.Int
// fallback through HermiteNormalForm on overflow). It is the hot inner
// step of the factored conflict decision: for T = [S; Π] with a fixed S
// the conflict lattice is recovered from the null basis of the single
// row Π·W. The basis vectors are columns of a unimodular matrix and
// hence primitive. An all-zero h is rejected with ErrRankDeficient.
func RowNullBasis(h Vector) (basis []Vector, err error) {
	return RowNullBasisAppend(nil, nil, h)
}

// RowNullBasisAppend is RowNullBasis with caller-provided storage: the
// basis vectors are appended to dst (pass a reused dst[:0] to avoid the
// slice-header allocation) and, when ar is non-nil, both the scratch and
// the returned vectors are arena-backed — valid until ar.Reset, so
// callers that keep a basis vector must clone it first. The overflow
// fallback allocates on the heap regardless of ar.
func RowNullBasisAppend(dst []Vector, ar *Arena, h Vector) ([]Vector, error) {
	bs, rankDeficient, ok := rowNullBasisFast(dst, ar, h)
	if ok {
		if rankDeficient {
			return nil, ErrRankDeficient
		}
		return bs, nil
	}
	// Overflow: fall back to the arbitrary-precision general path.
	hn, err := hermiteNormalFormBig(FromRows(h))
	if err != nil {
		return nil, err
	}
	return append(dst, hn.NullBasis()...), nil
}

// rowNullBasisFast is the checked-int64 single-row elimination. ok is
// false on intermediate overflow (dst is then unchanged in content but
// must be considered dirty; the callers re-append from the fallback).
func rowNullBasisFast(dst []Vector, ar *Arena, h Vector) (bs []Vector, rankDeficient, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isOverflow := r.(*OverflowError); isOverflow {
				ok = false
				return
			}
			panic(r)
		}
	}()
	q := len(h)
	var w Vector
	var u *Matrix
	if ar != nil {
		w = ar.Vec(q)
		copy(w, h)
		u = ar.Identity(q)
	} else {
		w = h.Clone()
		u = Identity(q)
	}
	// Bring a non-zero pivot to position 0.
	p := w.FirstNonZero()
	if p < 0 {
		return nil, true, true
	}
	if p != 0 {
		w[0], w[p] = w[p], w[0]
		u.swapCols(0, p)
	}
	for j := 1; j < q; j++ {
		if w[j] == 0 {
			continue
		}
		a, b := w[0], w[j]
		g, x, y := ExtGCD(a, b)
		// [col_0 col_j] ← [x·col_0 + y·col_j, -(b/g)·col_0 + (a/g)·col_j].
		u.combineCols(0, j, x, y, -(b / g), a/g)
		w[0], w[j] = g, 0
	}
	bs = dst
	for j := 1; j < q; j++ {
		var c Vector
		if ar != nil {
			c = ar.Vec(q)
		} else {
			c = make(Vector, q)
		}
		for i := 0; i < q; i++ {
			c[i] = u.a[i*q+j]
		}
		bs = append(bs, c)
	}
	return bs, false, true
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// L returns the leading k×k lower-triangular block of H.
func (h *HNF) L() *Matrix {
	k := h.T.Rows()
	rows := make([]int, k)
	cols := make([]int, k)
	for i := range rows {
		rows[i], cols[i] = i, i
	}
	return h.H.Submatrix(rows, cols)
}

// V returns U^{-1}, computed once and cached. In the paper's notation
// β = V·γ recovers the coordinates of a conflict vector γ in the column
// basis of U.
func (h *HNF) V() *Matrix {
	if h.v == nil {
		h.v = h.U.InverseUnimodular()
	}
	return h.v
}

// NullBasis returns the n-k trailing columns of U — a basis of the
// integer null space {γ : Tγ = 0}. Each basis vector is primitive
// (columns of a unimodular matrix always are) and the integral span of
// the basis is exactly the set of integral solutions (Theorem 4.2).
func (h *HNF) NullBasis() []Vector {
	k, n := h.T.Rows(), h.T.Cols()
	basis := make([]Vector, 0, n-k)
	for j := k; j < n; j++ {
		basis = append(basis, h.U.Col(j))
	}
	return basis
}

// NullityDim returns n - k, the dimension of the null space.
func (h *HNF) NullityDim() int { return h.T.Cols() - h.T.Rows() }

// Verify checks the defining properties of the decomposition: T·U = H,
// U unimodular, H = [L, 0] with L lower triangular with positive
// diagonal. It is used by tests and by callers that want defense in
// depth around the exact arithmetic.
func (h *HNF) Verify() error {
	k, n := h.T.Rows(), h.T.Cols()
	if !h.T.Mul(h.U).Equal(h.H) {
		return errors.New("intmat: HNF verify: T·U != H")
	}
	if !h.U.IsUnimodular() {
		return errors.New("intmat: HNF verify: U is not unimodular")
	}
	for i := 0; i < k; i++ {
		if h.H.At(i, i) <= 0 {
			return fmt.Errorf("intmat: HNF verify: diagonal entry H[%d][%d] = %d is not positive", i, i, h.H.At(i, i))
		}
		for j := i + 1; j < n; j++ {
			if h.H.At(i, j) != 0 {
				return fmt.Errorf("intmat: HNF verify: H[%d][%d] = %d above/right of the triangle is non-zero", i, j, h.H.At(i, j))
			}
		}
	}
	return nil
}
