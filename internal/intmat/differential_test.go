package intmat

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

// The int64 fast paths of HNFInto and SmithNormalFormInto claim to be
// operation-for-operation mirrors of the arbitrary-precision reference
// eliminations, which makes their outputs byte-equal whenever no
// intermediate overflows. These differential tests pin that claim
// against the big-path oracles across randomized inputs, and pin the
// scalar helpers the mirror argument rests on.

// TestExtGCDMatchesBigExtGCD: the minimality normalization of the two
// extended-gcd implementations must tie-break identically, or the fast
// HNF would diverge from the big path while both remain "correct".
func TestExtGCDMatchesBigExtGCD(t *testing.T) {
	for a := int64(-120); a <= 120; a++ {
		for b := int64(-120); b <= 120; b++ {
			if a == 0 && b == 0 {
				continue
			}
			g, x, y := ExtGCD(a, b)
			bg, bx, by := bigExtGCD(big.NewInt(a), big.NewInt(b))
			if g != bg.Int64() || x != bx.Int64() || y != by.Int64() {
				t.Fatalf("ExtGCD(%d,%d) = (%d,%d,%d), bigExtGCD = (%v,%v,%v)",
					a, b, g, x, y, bg, bx, by)
			}
		}
	}
}

// TestRoundDivMatchesBigRoundDiv: sizeReduce's Babai rounding must
// agree between paths for positive divisors (column self-dots).
func TestRoundDivMatchesBigRoundDiv(t *testing.T) {
	for a := int64(-200); a <= 200; a++ {
		for d := int64(1); d <= 40; d++ {
			got := roundDiv(a, d)
			want := bigRoundDiv(big.NewInt(a), big.NewInt(d)).Int64()
			if got != want {
				t.Fatalf("roundDiv(%d,%d) = %d, bigRoundDiv = %d", a, d, got, want)
			}
			gotF := floorDiv(a, d)
			wantF := bigFloorDiv(big.NewInt(a), big.NewInt(d)).Int64()
			if gotF != wantF {
				t.Fatalf("floorDiv(%d,%d) = %d, bigFloorDiv = %d", a, d, gotF, wantF)
			}
		}
	}
}

// randomMatrix draws a k×n matrix with entries in [-bound, bound].
func randomMatrix(rng *rand.Rand, k, n int, bound int64) *Matrix {
	m := New(k, n)
	for i := range m.a {
		m.a[i] = rng.Int63n(2*bound+1) - bound
	}
	return m
}

func TestHNFIntoMatchesBigOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ar := GetArena()
	defer PutArena(ar)
	var reused HNF
	for trial := 0; trial < 4000; trial++ {
		k := 1 + rng.Intn(3)
		n := k + rng.Intn(4)
		bound := int64(9)
		switch trial % 3 {
		case 1:
			bound = 60
		case 2:
			bound = 1 << 40 // forces intermediate overflow → fallback path
		}
		m := randomMatrix(rng, k, n, bound)
		want, wantErr := hermiteNormalFormBig(m)
		// Verify() re-multiplies T·U, which itself overflows int64 on the
		// huge-entry trials; the byte-comparison against the oracle still
		// holds there.
		verify := bound <= 60

		// Allocating wrapper, arena-backed, and storage-reusing calls
		// must all match the oracle bit for bit.
		got, gotErr := HermiteNormalForm(m)
		checkHNFMatch(t, m, want, wantErr, got, gotErr, verify, "HermiteNormalForm")

		ar.Reset()
		var hArena HNF
		aErr := HNFInto(&hArena, m, ar)
		checkHNFMatch(t, m, want, wantErr, &hArena, aErr, verify, "HNFInto(arena)")

		rErr := HNFInto(&reused, m, nil)
		checkHNFMatch(t, m, want, wantErr, &reused, rErr, verify, "HNFInto(reused)")
	}
}

func checkHNFMatch(t *testing.T, m *Matrix, want *HNF, wantErr error, got *HNF, gotErr error, verify bool, label string) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s error mismatch: big=%v fast=%v for\n%v", label, wantErr, gotErr, m)
	}
	if wantErr != nil {
		if errors.Is(wantErr, ErrRankDeficient) != errors.Is(gotErr, ErrRankDeficient) {
			t.Fatalf("%s error class mismatch: big=%v fast=%v for\n%v", label, wantErr, gotErr, m)
		}
		return
	}
	if !got.H.Equal(want.H) || !got.U.Equal(want.U) {
		t.Fatalf("%s diverged from big oracle for\n%v\nH fast=\n%v\nH big=\n%v\nU fast=\n%v\nU big=\n%v",
			label, m, got.H, want.H, got.U, want.U)
	}
	if verify {
		if err, ok := verifyNoOverflow(got.Verify); ok && err != nil {
			t.Fatalf("%s invariants: %v for\n%v", label, err, m)
		}
	}
}

// verifyNoOverflow runs a Verify method, reporting ok=false when the
// re-multiplication inside it overflows int64 (legitimate for valid
// decompositions whose multiplier entries approach 2^63 — the byte
// comparison against the oracle still covers those).
func verifyNoOverflow(f func() error) (err error, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isOverflow := r.(*OverflowError); isOverflow {
				ok = false
				return
			}
			panic(r)
		}
	}()
	return f(), true
}

func TestSmithIntoMatchesBigOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ar := GetArena()
	defer PutArena(ar)
	var reused SNF
	for trial := 0; trial < 3000; trial++ {
		k := 1 + rng.Intn(3)
		n := 1 + rng.Intn(4)
		bound := int64(9)
		switch trial % 3 {
		case 1:
			bound = 60
		case 2:
			bound = 1 << 40
		}
		m := randomMatrix(rng, k, n, bound)
		want, wantErr := smithNormalFormBig(m)
		verify := bound <= 60

		got, gotErr := SmithNormalForm(m)
		checkSNFMatch(t, m, want, wantErr, got, gotErr, verify, "SmithNormalForm")

		ar.Reset()
		var sArena SNF
		aErr := SmithNormalFormInto(&sArena, m, ar)
		checkSNFMatch(t, m, want, wantErr, &sArena, aErr, verify, "SmithNormalFormInto(arena)")

		rErr := SmithNormalFormInto(&reused, m, nil)
		checkSNFMatch(t, m, want, wantErr, &reused, rErr, verify, "SmithNormalFormInto(reused)")
	}
}

func checkSNFMatch(t *testing.T, m *Matrix, want *SNF, wantErr error, got *SNF, gotErr error, verify bool, label string) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s error mismatch: big=%v fast=%v for\n%v", label, wantErr, gotErr, m)
	}
	if wantErr != nil {
		return
	}
	if !got.P.Equal(want.P) || !got.D.Equal(want.D) || !got.Q.Equal(want.Q) {
		t.Fatalf("%s diverged from big oracle for\n%v\nD fast=\n%v\nD big=\n%v", label, m, got.D, want.D)
	}
	if verify {
		if err, ok := verifyNoOverflow(got.Verify); ok && err != nil {
			t.Fatalf("%s invariants: %v for\n%v", label, err, m)
		}
	}
}

// TestRowNullBasisAppendMatches: the arena/append form returns the same
// basis as the allocating wrapper, including through the overflow
// fallback.
func TestRowNullBasisAppendMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	ar := GetArena()
	defer PutArena(ar)
	scratch := make([]Vector, 0, 8)
	for trial := 0; trial < 4000; trial++ {
		q := 2 + rng.Intn(4)
		bound := int64(9)
		switch trial % 3 {
		case 1:
			bound = 1000
		case 2:
			bound = 1 << 40
		}
		h := make(Vector, q)
		for i := range h {
			h[i] = rng.Int63n(2*bound+1) - bound
		}
		want, wantErr := RowNullBasis(h)
		ar.Reset()
		got, gotErr := RowNullBasisAppend(scratch[:0], ar, h)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch for h=%v: %v vs %v", h, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("basis size mismatch for h=%v: %d vs %d", h, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("basis[%d] mismatch for h=%v: %v vs %v", i, h, got[i], want[i])
			}
		}
	}
}

// TestInplaceMatchesAllocating: the Into variants produce the same
// results as the allocating methods they back.
func TestInplaceMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	ar := GetArena()
	defer PutArena(ar)
	for trial := 0; trial < 2000; trial++ {
		ar.Reset()
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(4)
		m := randomMatrix(rng, k, n, 50)
		o := randomMatrix(rng, n, k, 50)
		sq := randomMatrix(rng, n, n, 12)
		v := make(Vector, n)
		for i := range v {
			v[i] = rng.Int63n(41) - 20
		}

		if got := MulInto(ar.Mat(k, k), m, o); !got.Equal(m.Mul(o)) {
			t.Fatalf("MulInto mismatch")
		}
		if got := MulVecInto(ar.Vec(k), m, v); !got.Equal(m.MulVec(v)) {
			t.Fatalf("MulVecInto mismatch")
		}
		if got := TransposeInto(ar.Mat(n, k), m); !got.Equal(m.Transpose()) {
			t.Fatalf("TransposeInto mismatch")
		}
		if got := AdjugateInto(ar.Mat(n, n), ar, sq); !got.Equal(sq.Adjugate()) {
			t.Fatalf("AdjugateInto mismatch for\n%v", sq)
		}
		if got, want := DetIn(ar, sq), sq.Det(); got != want {
			t.Fatalf("DetIn = %d, Det = %d for\n%v", got, want, sq)
		}
	}
}
