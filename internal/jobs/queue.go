package jobs

// fairQueue is a round-robin-across-tenants FIFO of job IDs: within a
// tenant, jobs run in submission order; across tenants, dispatch
// rotates so one tenant's backlog can never starve another's — the
// processor-allocation-under-contention policy at queue granularity.
// Not safe for concurrent use; the manager's mutex guards it.
type fairQueue struct {
	byTenant map[string][]string
	// order lists tenants that currently have queued work, in first-
	// arrival order; rr is the rotation cursor into it.
	order []string
	rr    int
	size  int
}

func newFairQueue() *fairQueue {
	return &fairQueue{byTenant: make(map[string][]string)}
}

// push appends a job to its tenant's FIFO.
func (q *fairQueue) push(tenant, id string) {
	if len(q.byTenant[tenant]) == 0 {
		q.order = append(q.order, tenant)
	}
	q.byTenant[tenant] = append(q.byTenant[tenant], id)
	q.size++
}

// pop removes and returns the next job in round-robin order.
func (q *fairQueue) pop() (string, bool) {
	if q.size == 0 {
		return "", false
	}
	if q.rr >= len(q.order) {
		q.rr = 0
	}
	tenant := q.order[q.rr]
	fifo := q.byTenant[tenant]
	id := fifo[0]
	if len(fifo) == 1 {
		delete(q.byTenant, tenant)
		q.order = append(q.order[:q.rr], q.order[q.rr+1:]...)
		// rr now points at the next tenant already; no advance.
	} else {
		q.byTenant[tenant] = fifo[1:]
		q.rr++
	}
	q.size--
	return id, true
}

// remove deletes a queued job (cancellation before dispatch).
func (q *fairQueue) remove(tenant, id string) bool {
	fifo := q.byTenant[tenant]
	for i, qid := range fifo {
		if qid != id {
			continue
		}
		fifo = append(fifo[:i], fifo[i+1:]...)
		if len(fifo) == 0 {
			delete(q.byTenant, tenant)
			for j, t := range q.order {
				if t == tenant {
					q.order = append(q.order[:j], q.order[j+1:]...)
					if q.rr > j {
						q.rr--
					}
					break
				}
			}
		} else {
			q.byTenant[tenant] = fifo
		}
		q.size--
		return true
	}
	return false
}

// tenantLen reports a tenant's queued-job count (the per-tenant
// admission bound checks it before accepting a submission).
func (q *fairQueue) tenantLen(tenant string) int {
	return len(q.byTenant[tenant])
}
