package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sn, ok := m.Get(id); ok && sn.State == want {
			return sn
		}
		time.Sleep(2 * time.Millisecond)
	}
	sn, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (last state %s)", id, want, sn.State)
	return Snapshot{}
}

func TestIDDeterministic(t *testing.T) {
	a := ID("map", "v1|mu=2,3|D=...")
	b := ID("map", "v1|mu=2,3|D=...")
	if a != b {
		t.Fatalf("same inputs gave %s and %s", a, b)
	}
	if c := ID("verify", "v1|mu=2,3|D=..."); c == a {
		t.Fatalf("kind not part of the identity: %s", c)
	}
	if len(a) != 17 || a[0] != 'j' {
		t.Fatalf("unexpected ID shape %q", a)
	}
}

func TestLifecycleAndDedup(t *testing.T) {
	var runs sync.Map
	m, err := Open(Config{
		Dir:     t.TempDir(),
		Workers: 2,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			n, _ := runs.LoadOrStore(string(payload), new(int))
			*(n.(*int))++
			return []byte(`{"ok":true}` + "\n"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	sn, err := m.Submit("map", "acme", "k1", []byte(`{"p":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Deduped {
		t.Fatal("fresh submission reported deduped")
	}
	done := waitState(t, m, sn.ID, StateDone)
	if string(done.Result) != `{"ok":true}`+"\n" {
		t.Fatalf("result = %q", done.Result)
	}
	// Events trace the canonical path.
	var states []State
	for _, ev := range done.Events {
		states = append(states, ev.State)
	}
	want := []State{StateQueued, StateRunning, StateDone}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", states, want)
	}
	for i, ev := range done.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	// Same (kind, key) dedups onto the finished job without re-running.
	again, err := m.Submit("map", "acme", "k1", []byte(`{"p":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.ID != sn.ID || again.State != StateDone {
		t.Fatalf("dedup snapshot = %+v", again)
	}
	if n, _ := runs.Load(`{"p":1}`); *(n.(*int)) != 1 {
		t.Fatalf("executor ran %d times, want 1", *(n.(*int)))
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Deduped != 1 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailureAndResubmit(t *testing.T) {
	fail := true
	m, err := Open(Config{
		Dir:     t.TempDir(),
		Workers: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			if fail {
				return nil, errors.New("engine exploded")
			}
			return []byte("{}\n"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	sn, err := m.Submit("map", "", "kf", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, sn.ID, StateFailed)
	if failed.Error != "engine exploded" {
		t.Fatalf("error = %q", failed.Error)
	}
	// Resubmitting a failed job re-arms it under the same ID.
	fail = false
	re, err := m.Submit("map", "", "kf", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if re.ID != sn.ID || re.Deduped {
		t.Fatalf("resubmit snapshot = %+v", re)
	}
	waitState(t, m, sn.ID, StateDone)
}

func TestRetryableRequeues(t *testing.T) {
	attempts := 0
	var mu sync.Mutex
	m, err := Open(Config{
		Dir:     t.TempDir(),
		Workers: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n < 3 {
				return nil, &RetryableError{Err: errors.New("overloaded")}
			}
			return []byte("{}\n"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sn, err := m.Submit("map", "", "kr", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, sn.ID, StateDone)
	if done.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", done.Attempts)
	}
	if st := m.Stats(); st.Requeued != 2 {
		t.Fatalf("requeued = %d, want 2", st.Requeued)
	}
}

func TestRetryableExhaustsAttempts(t *testing.T) {
	m, err := Open(Config{
		Dir:         t.TempDir(),
		Workers:     1,
		MaxAttempts: 2,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			return nil, &RetryableError{Err: errors.New("still overloaded")}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sn, err := m.Submit("map", "", "ke", nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, sn.ID, StateFailed)
	if failed.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", failed.Attempts)
	}
}

func TestQueueFullPerTenant(t *testing.T) {
	gate := make(chan struct{})
	m, err := Open(Config{
		Dir:            t.TempDir(),
		Workers:        1,
		PerTenantQueue: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			select {
			case <-gate:
				return []byte("{}\n"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)

	a, err := m.Submit("map", "acme", "q1", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning) // occupies the worker, leaves the queue
	if _, err := m.Submit("map", "acme", "q2", nil); err != nil {
		t.Fatal(err) // fills acme's queue slot
	}
	_, err = m.Submit("map", "acme", "q3", nil)
	var qf *QueueFullError
	if !errors.As(err, &qf) || qf.Tenant != "acme" {
		t.Fatalf("err = %v, want QueueFullError for acme", err)
	}
	if qf.Depth != 1 || qf.Limit != 1 {
		t.Fatalf("depth/limit = %d/%d, want 1/1", qf.Depth, qf.Limit)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d", st.Rejected)
	}
	// The bound is per tenant: another tenant still gets in.
	if _, err := m.Submit("map", "globex", "q4", nil); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

func TestFairRoundRobinAcrossTenants(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	m, err := Open(Config{
		Dir:     t.TempDir(),
		Workers: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			<-gate
			mu.Lock()
			order = append(order, string(payload))
			mu.Unlock()
			return []byte("{}\n"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Hold the single worker on a sentinel job so the backlog builds up
	// in a known order: tenant A floods three jobs, then B and C submit
	// one each. Fair dispatch must interleave B and C ahead of A's tail.
	first, err := m.Submit("map", "z", "hold", []byte("z0"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	var last Snapshot
	for i, sub := range []struct{ tenant, key string }{
		{"a", "a1"}, {"a", "a2"}, {"a", "a3"}, {"b", "b1"}, {"c", "c1"},
	} {
		sn, err := m.Submit("map", sub.tenant, sub.key, []byte(fmt.Sprintf("%s#%d", sub.tenant, i)))
		if err != nil {
			t.Fatal(err)
		}
		last = sn
	}
	close(gate)
	waitState(t, m, last.ID, StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 6 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	// After the sentinel, round-robin over {a, b, c} gives one job per
	// tenant per cycle: a1, b1, c1, then a's remaining backlog.
	want := []string{"z0", "a#0", "b#3", "c#4", "a#1", "a#2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	m, err := Open(Config{
		Dir:     t.TempDir(),
		Workers: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			started <- string(payload)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	run, err := m.Submit("map", "", "c-run", []byte("run"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit("map", "", "c-queued", []byte("queued"))
	if err != nil {
		t.Fatal(err)
	}
	// Cancelling the queued job removes it before dispatch.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	sn := waitState(t, m, queued.ID, StateCancelled)
	if sn.Attempts != 0 {
		t.Fatalf("cancelled-queued job ran %d times", sn.Attempts)
	}
	// Cancelling the running job frees the worker slot: a fresh job can
	// only reach the executor if the slot came back.
	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, run.ID, StateCancelled)
	next, err := m.Submit("map", "", "c-next", []byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-started:
		if got != "next" {
			t.Fatalf("executor saw %q, want next", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker slot never released after cancellation")
	}
	if _, err := m.Cancel(next.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, next.ID, StateCancelled)
	// Cancelling a terminal job is refused.
	if _, err := m.Cancel(next.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel terminal = %v, want ErrTerminal", err)
	}
	if _, err := m.Cancel("jdeadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	m1, err := Open(Config{
		Dir:     dir,
		Workers: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			entered <- struct{}{}
			select {
			case <-hold:
				return []byte("{}\n"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	running, err := m1.Submit("map", "t", "kr1", []byte(`{"r":1}`))
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	queuedJob, err := m1.Submit("map", "t", "kr2", []byte(`{"r":2}`))
	if err != nil {
		t.Fatal(err)
	}
	m1.Close() // interrupts the running job; both jobs stay spooled

	// A new manager on the same spool resumes both and completes them.
	m2, err := Open(Config{
		Dir:     dir,
		Workers: 2,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			return append([]byte("done:"), payload...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if st := m2.Stats(); st.Resumed != 2 {
		t.Fatalf("resumed = %d, want 2", st.Resumed)
	}
	for _, id := range []string{running.ID, queuedJob.ID} {
		sn := waitState(t, m2, id, StateDone)
		found := false
		for _, ev := range sn.Events {
			if ev.State == StateQueued && len(ev.Detail) >= 7 && ev.Detail[:7] == "resumed" {
				found = true
			}
		}
		if !found {
			t.Fatalf("job %s missing resumed event: %+v", id, sn.Events)
		}
	}
	// Identity is stable across the restart: resubmitting dedups.
	sn, err := m2.Submit("map", "t", "kr1", []byte(`{"r":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if !sn.Deduped || sn.ID != running.ID {
		t.Fatalf("post-restart dedup = %+v", sn)
	}
}

// A job that was already done at shutdown must replay its result
// byte-for-byte after a restart. The spool stores the result as raw
// bytes precisely so its own (indented) encoder cannot reformat an
// embedded JSON body — and so non-JSON executor output survives too.
func TestDoneJobResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	// Indented JSON with a trailing newline, like the service writes —
	// the shape a raw-JSON spool field would silently re-indent.
	want := "{\n  \"total_time\": 25,\n  \"list\": [\n    1,\n    2\n  ]\n}\n"
	exec := func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
		return []byte(want), nil
	}
	m1, err := Open(Config{Dir: dir, Workers: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := m1.Submit("map", "", "kdone", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, sn.ID, StateDone)
	m1.Close()

	m2, err := Open(Config{Dir: dir, Workers: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, ok := m2.Get(sn.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("done job not adopted: ok=%v state=%s", ok, got.State)
	}
	if string(got.Result) != want {
		t.Fatalf("result mutated across restart:\n got %q\nwant %q", got.Result, want)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (done job must not re-run)", got.Attempts)
	}
}

func TestSubscribeStreams(t *testing.T) {
	gate := make(chan struct{})
	m, err := Open(Config{
		Dir:     t.TempDir(),
		Workers: 1,
		Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
			<-gate
			return []byte("{}\n"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sn, err := m.Submit("map", "", "ks", nil)
	if err != nil {
		t.Fatal(err)
	}
	history, ch, cancel, err := m.Subscribe(sn.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(history) < 1 || history[0].State != StateQueued {
		t.Fatalf("history = %+v", history)
	}
	close(gate)
	var live []State
	for ev := range ch { // closes at the terminal transition
		live = append(live, ev.State)
	}
	if len(live) == 0 || live[len(live)-1] != StateDone {
		t.Fatalf("live events = %v", live)
	}
	// Subscribing to a terminal job returns full history and a closed
	// channel.
	history, ch, cancel, err = m.Subscribe(sn.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(history) != 3 {
		t.Fatalf("terminal history = %+v", history)
	}
	if _, open := <-ch; open {
		t.Fatal("terminal subscription channel not closed")
	}
	if _, _, _, err := m.Subscribe("junk"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("subscribe unknown = %v", err)
	}
}

func TestFairQueueRemoveAndRotation(t *testing.T) {
	q := newFairQueue()
	q.push("a", "a1")
	q.push("a", "a2")
	q.push("b", "b1")
	if !q.remove("a", "a1") {
		t.Fatal("remove a1 failed")
	}
	if q.remove("a", "zz") {
		t.Fatal("removed a job that is not queued")
	}
	var got []string
	for {
		id, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, id)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"a2", "b1"}) {
		t.Fatalf("pop order = %v", got)
	}
	if q.size != 0 || q.tenantLen("a") != 0 {
		t.Fatalf("queue not drained: size=%d", q.size)
	}
}

func TestCorruptSpoolFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir, Workers: 1, Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
		return []byte("{}\n"), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := m1.Submit("map", "", "kc", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, sn.ID, StateDone)
	m1.Close()

	// Corrupt the record, drop a stray temp file, then reopen.
	st := &store{dir: dir}
	if err := writeFile(st.path(sn.ID), []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(st.dir+"/"+sn.ID+".tmp-123", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Config{Dir: dir, Workers: 1, Exec: func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
		return []byte("{}\n"), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, ok := m2.Get(sn.ID); ok {
		t.Fatal("corrupt record was adopted")
	}
}

// TestAppendEventMonotoneClamp: the event log promises monotone
// timestamps, but call sites stamp wall-clock time, which can step
// backwards under NTP correction — and a spool written before such a
// step resumes with future-dated events. A backwards stamp is clamped
// to the previous event's time; forward stamps pass through untouched.
func TestAppendEventMonotoneClamp(t *testing.T) {
	j := &job{}
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	j.appendEvent(StateQueued, "submitted", base)
	j.appendEvent(StateRunning, "", base.Add(time.Second))

	// The clock steps back ten seconds mid-run.
	ev := j.appendEvent(StateDone, "", base.Add(-9*time.Second))
	if !ev.At.Equal(base.Add(time.Second)) {
		t.Errorf("backwards stamp not clamped: got %v, want %v", ev.At, base.Add(time.Second))
	}

	// Forward time after the clamp is honored as-is.
	ev = j.appendEvent(StateQueued, "resubmitted", base.Add(2*time.Second))
	if !ev.At.Equal(base.Add(2 * time.Second)) {
		t.Errorf("forward stamp altered: got %v, want %v", ev.At, base.Add(2*time.Second))
	}

	// The whole log is monotone with dense sequence numbers.
	for i, e := range j.events {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
		if i > 0 && e.At.Before(j.events[i-1].At) {
			t.Errorf("event %d at %v precedes event %d at %v", i, e.At, i-1, j.events[i-1].At)
		}
	}
}
