package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Executor runs one job attempt and returns the result body to store.
// Wrapping the error in *RetryableError asks the manager to re-queue
// the attempt instead of failing the job.
type Executor func(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error)

// Config sizes a Manager.
type Config struct {
	// Dir is the spool directory (required). It is created if absent;
	// jobs found in it on Open are adopted — queued and running ones
	// re-enter the queue, terminal ones stay retrievable.
	Dir string
	// Workers is the execution fan-out (≤ 0 selects 2).
	Workers int
	// PerTenantQueue bounds each tenant's queued-job backlog
	// (≤ 0 selects 64). Running jobs don't count against it.
	PerTenantQueue int
	// MaxAttempts caps executor runs per job including retries of
	// transient failures (≤ 0 selects 8).
	MaxAttempts int
	// Exec runs job attempts (required).
	Exec Executor
	// Logger, when non-nil, receives job lifecycle lines.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.PerTenantQueue <= 0 {
		c.PerTenantQueue = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	return c
}

// Stats is the counter snapshot the service mirrors into /metrics and
// the expvar surface.
type Stats struct {
	Submitted int64 // accepted submissions that created or re-queued a job
	Deduped   int64 // submissions answered by an existing job
	Rejected  int64 // submissions refused by the per-tenant queue bound
	Done      int64
	Failed    int64
	Cancelled int64
	Resumed   int64 // jobs re-queued from the spool on Open
	Requeued  int64 // transient-failure retries
	Queued    int64 // gauge: jobs waiting for a worker
	Running   int64 // gauge: jobs holding a worker
}

// Manager owns the job table, the fair queue, the spool, and the
// worker pool. Create with Open, stop with Close.
type Manager struct {
	cfg Config
	st  *store

	mu     sync.Mutex
	cond   *sync.Cond // signals queue activity and shutdown
	jobs   map[string]*job
	q      *fairQueue
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Int64
	deduped   atomic.Int64
	rejected  atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	resumed   atomic.Int64
	requeued  atomic.Int64
	running   atomic.Int64
}

// Open loads the spool, re-queues every non-terminal job it finds
// (stamping a "resumed" transition), and starts the worker pool.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	st, err := newStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, st: st, jobs: make(map[string]*job), q: newFairQueue()}
	m.cond = sync.NewCond(&m.mu)
	recs, err := st.load()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		j := jobFromRecord(r)
		m.jobs[j.id] = j
		if j.state.Terminal() {
			continue
		}
		// Queued jobs come straight back; a job spooled as running was
		// interrupted mid-execution and restarts from scratch (executors
		// are pure functions of the problem, so re-running is safe).
		detail := "resumed after restart"
		if j.state == StateRunning {
			detail = "resumed after restart (was running)"
			j.started = time.Time{}
		}
		j.state = StateQueued
		j.appendEvent(StateQueued, detail, time.Now().UTC())
		m.persist(j)
		m.q.push(j.tenant, j.id)
		m.resumed.Add(1)
		m.logf("job resumed", j)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close stops accepting work, cancels running jobs (their spool
// records keep the running state, so a later Open re-queues them), and
// waits for the workers to exit. Safe to call more than once.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Submit registers a job for (kind, key), deduplicating on the
// deterministic ID: an existing queued, running, or done job answers
// the submission as-is (deduped = true); a failed or cancelled one is
// re-armed under the same ID. The payload is stored verbatim and
// handed to the Executor on dispatch.
func (m *Manager) Submit(kind, tenant, key string, payload json.RawMessage) (Snapshot, error) {
	id := ID(kind, key)
	now := time.Now().UTC()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		switch {
		case !j.state.Terminal() || j.state == StateDone:
			m.deduped.Add(1)
			sn := j.snapshot()
			sn.Deduped = true
			return sn, nil
		default: // failed or cancelled: re-arm
			if depth := m.q.tenantLen(j.tenant); depth >= m.cfg.PerTenantQueue {
				m.rejected.Add(1)
				return Snapshot{}, &QueueFullError{Tenant: j.tenant, Depth: depth, Limit: m.cfg.PerTenantQueue}
			}
			j.state = StateQueued
			j.finished = time.Time{}
			j.started = time.Time{}
			j.errMsg = ""
			j.result = nil
			j.attempts = 0
			j.cancelRequested = false
			ev := j.appendEvent(StateQueued, "resubmitted", now)
			m.persist(j)
			m.notify(j, ev)
			m.q.push(j.tenant, j.id)
			m.submitted.Add(1)
			m.cond.Signal()
			m.logf("job resubmitted", j)
			return j.snapshot(), nil
		}
	}
	if depth := m.q.tenantLen(tenant); depth >= m.cfg.PerTenantQueue {
		m.rejected.Add(1)
		return Snapshot{}, &QueueFullError{Tenant: tenant, Depth: depth, Limit: m.cfg.PerTenantQueue}
	}
	j := &job{
		id:      id,
		kind:    kind,
		tenant:  tenant,
		key:     key,
		payload: append(json.RawMessage(nil), payload...),
		state:   StateQueued,
		created: now,
	}
	j.appendEvent(StateQueued, "submitted", now)
	m.jobs[id] = j
	m.persist(j)
	m.q.push(tenant, id)
	m.submitted.Add(1)
	m.cond.Signal()
	m.logf("job submitted", j)
	return j.snapshot(), nil
}

// Get returns a job snapshot by ID.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// Cancel stops a job: a queued one leaves the queue immediately, a
// running one has its execution context cancelled (the worker slot
// frees as soon as the executor honors it, and the job lands in the
// cancelled state). Cancelling a terminal job reports ErrTerminal.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		m.q.remove(j.tenant, j.id)
		m.finishLocked(j, StateCancelled, "cancelled while queued", nil, "")
		return j.snapshot(), nil
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return j.snapshot(), nil
	default:
		return j.snapshot(), ErrTerminal
	}
}

// Subscribe returns the job's event history plus a live channel that
// replays every subsequent transition and closes once the job is
// terminal (immediately, for an already-terminal job). The returned
// cancel must be called when the caller stops listening.
func (m *Manager) Subscribe(id string) (history []Event, ch <-chan Event, cancel func(), err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, nil, ErrNotFound
	}
	history = append([]Event(nil), j.events...)
	c := make(chan Event, 64)
	if j.state.Terminal() {
		close(c)
		return history, c, func() {}, nil
	}
	if j.subs == nil {
		j.subs = make(map[int]chan Event)
	}
	idx := j.nextSub
	j.nextSub++
	j.subs[idx] = c
	cancel = func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if _, live := j.subs[idx]; live {
			delete(j.subs, idx)
			close(c)
		}
	}
	return history, c, cancel, nil
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	queued := int64(m.q.size)
	m.mu.Unlock()
	return Stats{
		Submitted: m.submitted.Load(),
		Deduped:   m.deduped.Load(),
		Rejected:  m.rejected.Load(),
		Done:      m.done.Load(),
		Failed:    m.failed.Load(),
		Cancelled: m.cancelled.Load(),
		Resumed:   m.resumed.Load(),
		Requeued:  m.requeued.Load(),
		Queued:    queued,
		Running:   m.running.Load(),
	}
}

// worker is one pool goroutine: pop in fair order, execute, settle.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.closed && m.q.size == 0 {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		id, _ := m.q.pop()
		j := m.jobs[id]
		now := time.Now().UTC()
		j.state = StateRunning
		j.started = now
		j.attempts++
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		ev := j.appendEvent(StateRunning, "", now)
		m.persist(j)
		m.notify(j, ev)
		m.running.Add(1)
		kind, payload := j.kind, j.payload
		m.mu.Unlock()

		result, err := m.cfg.Exec(ctx, kind, payload)
		cancel()
		m.running.Add(-1)

		m.mu.Lock()
		j.cancel = nil
		switch {
		case m.closed && err != nil:
			// Shutdown interrupted the run: leave the spool record in the
			// running state so the next Open resumes this job.
			m.mu.Unlock()
			return
		case err == nil:
			m.finishLocked(j, StateDone, "", result, "")
		case j.cancelRequested:
			m.finishLocked(j, StateCancelled, "cancelled while running", nil, "")
		case isRetryable(err) && j.attempts < m.cfg.MaxAttempts:
			j.state = StateQueued
			ev := j.appendEvent(StateQueued, "requeued: "+err.Error(), time.Now().UTC())
			m.persist(j)
			m.notify(j, ev)
			m.q.push(j.tenant, j.id)
			m.requeued.Add(1)
			m.cond.Signal()
			attempts := j.attempts
			m.mu.Unlock()
			// Brief linear backoff off-lock so a saturated pool isn't
			// hammered by an instantly re-dispatched retry.
			time.Sleep(time.Duration(attempts) * 10 * time.Millisecond)
			continue
		default:
			m.finishLocked(j, StateFailed, "", nil, err.Error())
		}
		m.mu.Unlock()
	}
}

func isRetryable(err error) bool {
	var re *RetryableError
	return errors.As(err, &re)
}

// finishLocked settles a job into a terminal state: event, counters,
// spool write, subscriber notification + channel close. Caller holds
// the mutex.
func (m *Manager) finishLocked(j *job, state State, detail string, result []byte, errMsg string) {
	now := time.Now().UTC()
	j.state = state
	j.finished = now
	j.errMsg = errMsg
	if result != nil {
		j.result = append(json.RawMessage(nil), result...)
	}
	ev := j.appendEvent(state, detail, now)
	switch state {
	case StateDone:
		m.done.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCancelled:
		m.cancelled.Add(1)
	}
	m.persist(j)
	m.notify(j, ev)
	for idx, c := range j.subs {
		delete(j.subs, idx)
		close(c)
	}
	m.logf("job "+string(state), j)
}

// notify fans one event out to the job's subscribers. Sends never
// block: the channels are buffered well past the event count a job can
// produce, and a wedged reader only loses its own tail.
func (m *Manager) notify(j *job, ev Event) {
	for _, c := range j.subs {
		select {
		case c <- ev:
		default:
		}
	}
}

// persist writes the job's spool record; persistence failures are
// logged, not fatal — the in-memory tier keeps serving, durability
// degrades until the disk recovers.
func (m *Manager) persist(j *job) {
	if err := m.st.save(j.record()); err != nil && m.cfg.Logger != nil {
		m.cfg.Logger.Error("job spool write failed", slog.String("job", j.id), slog.String("error", err.Error()))
	}
}

func (m *Manager) logf(msg string, j *job) {
	if m.cfg.Logger == nil {
		return
	}
	m.cfg.Logger.Info(msg,
		slog.String("job", j.id),
		slog.String("kind", j.kind),
		slog.String("tenant", j.tenant),
		slog.String("state", string(j.state)),
		slog.Int("attempts", j.attempts))
}
