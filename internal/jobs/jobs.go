// Package jobs is the durable asynchronous job tier: problems too
// large for a single request deadline are submitted once, executed by
// a bounded worker pool with per-tenant fairness, spooled to disk at
// every state transition, and resumed after a restart. The package is
// engine-agnostic — execution is delegated to an Executor callback —
// so it depends on nothing above the standard library and can back any
// of the service's problem kinds (map, verify).
//
// Identity is deterministic: a job's ID is a hash of its kind and its
// canonical problem key, so re-submitting the same problem (in any
// axis permutation — the caller canonicalizes before keying) lands on
// the same job, before or after a restart. That makes submission
// idempotent and lets a cluster route every job endpoint by ID alone.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// State is a job's position in the lifecycle
//
//	queued → running → done | failed | cancelled
//
// with two non-terminal re-entries: running → queued when a transient
// executor failure is retried or a restart resumes a spooled job, and
// failed|cancelled → queued when the same problem is submitted again.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one recorded state transition. Seq increases by one per
// event within a job, so streams can resume without duplication.
type Event struct {
	Seq    int       `json:"seq"`
	State  State     `json:"state"`
	At     time.Time `json:"at"`
	Detail string    `json:"detail,omitempty"`
}

// ID derives the deterministic job identity from the job kind and the
// canonical problem key. 64 bits of SHA-256 keep accidental collision
// probability negligible at corpus scale while staying filename- and
// URL-safe.
func ID(kind, key string) string {
	sum := sha256.Sum256([]byte("job|" + kind + "|" + key))
	return "j" + hex.EncodeToString(sum[:8])
}

// Snapshot is the externally visible copy of a job, safe to hold
// after the manager's lock is released.
type Snapshot struct {
	ID      string `json:"job_id"`
	Kind    string `json:"kind"`
	Tenant  string `json:"tenant,omitempty"`
	Key     string `json:"canonical_key"`
	State   State  `json:"state"`
	Deduped bool   `json:"deduped,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Attempts counts executor runs, including retries after transient
	// failures and resumed runs after a restart.
	Attempts int `json:"attempts"`

	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`

	// Result is the stored response body of a done job — produced by
	// the executor with the exact encoder settings of the synchronous
	// endpoint, so GET /v1/jobs/{id}/result can replay it byte for
	// byte.
	Result json.RawMessage `json:"result,omitempty"`

	Events []Event `json:"events"`
}

// job is the manager-internal mutable record. All fields are guarded
// by the manager's mutex.
type job struct {
	id      string
	kind    string
	tenant  string
	key     string
	payload json.RawMessage

	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	attempts int
	errMsg   string
	result   json.RawMessage
	events   []Event

	cancel          func() // non-nil while running
	cancelRequested bool
	subs            map[int]chan Event
	nextSub         int
}

func (j *job) appendEvent(state State, detail string, at time.Time) Event {
	// The event log promises monotone timestamps (streams resume on
	// Seq, readers sort on At), but the call sites stamp wall-clock
	// time, which can step backwards under NTP correction — and a
	// spool written before such a step resumes with future-dated
	// events. Clamp every append to the previous event's time.
	if n := len(j.events); n > 0 && at.Before(j.events[n-1].At) {
		at = j.events[n-1].At
	}
	ev := Event{Seq: len(j.events), State: state, At: at, Detail: detail}
	j.events = append(j.events, ev)
	return ev
}

func (j *job) snapshot() Snapshot {
	sn := Snapshot{
		ID:       j.id,
		Kind:     j.kind,
		Tenant:   j.tenant,
		Key:      j.key,
		State:    j.state,
		Created:  j.created,
		Attempts: j.attempts,
		Error:    j.errMsg,
		Events:   append([]Event(nil), j.events...),
	}
	if !j.started.IsZero() {
		t := j.started
		sn.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		sn.Finished = &t
	}
	if j.result != nil {
		sn.Result = append(json.RawMessage(nil), j.result...)
	}
	return sn
}

// record is the on-disk shape of a job: one JSON document per job in
// the spool directory, rewritten atomically at every transition.
type record struct {
	Version  int             `json:"version"`
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Tenant   string          `json:"tenant,omitempty"`
	Key      string          `json:"key"`
	Payload  json.RawMessage `json:"payload"`
	State    State           `json:"state"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started,omitzero"`
	Finished time.Time       `json:"finished,omitzero"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	// Result is []byte (base64 on disk), not json.RawMessage: the job
	// tier promises byte-exact result replay, and embedding the result
	// as raw JSON would let the spool's indenting encoder reformat it
	// (it would also reject non-JSON executor output outright).
	Result []byte  `json:"result,omitempty"`
	Events []Event `json:"events"`
}

const recordVersion = 1

func (j *job) record() *record {
	return &record{
		Version:  recordVersion,
		ID:       j.id,
		Kind:     j.kind,
		Tenant:   j.tenant,
		Key:      j.key,
		Payload:  j.payload,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Attempts: j.attempts,
		Error:    j.errMsg,
		Result:   j.result,
		Events:   j.events,
	}
}

func jobFromRecord(r *record) *job {
	return &job{
		id:       r.ID,
		kind:     r.Kind,
		tenant:   r.Tenant,
		key:      r.Key,
		payload:  r.Payload,
		state:    r.State,
		created:  r.Created,
		started:  r.Started,
		finished: r.Finished,
		attempts: r.Attempts,
		errMsg:   r.Error,
		result:   r.Result,
		events:   r.Events,
	}
}

// Sentinel errors of the job tier.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal reports a cancellation attempt on a job already in a
	// terminal state.
	ErrTerminal = errors.New("jobs: job already in a terminal state")
	// ErrClosed reports a submission after the manager shut down.
	ErrClosed = errors.New("jobs: manager closed")
)

// QueueFullError reports that a tenant's queue is at capacity — the
// HTTP layer maps it to 429 with a Retry-After hint plus the rejecting
// tenant's depth and limit in the JSON error body.
type QueueFullError struct {
	Tenant string
	Depth  int // queued jobs for the tenant at rejection time
	Limit  int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobs: queue full for tenant %q (%d queued, limit %d)", e.Tenant, e.Depth, e.Limit)
}

// RetryableError marks an executor failure as transient (admission
// pressure, shutdown race): the manager re-queues the job instead of
// failing it, up to its attempt budget.
type RetryableError struct{ Err error }

func (e *RetryableError) Error() string { return e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }
