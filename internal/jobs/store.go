package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// store is the file-backed spool: one <id>.json document per job,
// rewritten atomically (temp file + rename in the same directory) at
// every state transition, so a crash at any instant leaves either the
// previous or the next consistent record — never a torn one.
type store struct{ dir string }

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: spool dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// save atomically persists one job record.
func (st *store) save(r *record) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encode %s: %w", r.ID, err)
	}
	tmp, err := os.CreateTemp(st.dir, r.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: spool %s: %w", r.ID, err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("jobs: spool %s: %w", r.ID, werr)
	}
	if err := os.Rename(tmp.Name(), st.path(r.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: spool %s: %w", r.ID, err)
	}
	return nil
}

// load reads every job record in the spool, sorted by creation time
// (then ID) so resumed jobs re-enter the queue in their original
// submission order. Unparseable files — a torn write from a kernel
// crash, say — are renamed aside with a .corrupt suffix rather than
// wedging startup; leftover temp files are removed.
func (st *store) load() ([]*record, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: spool dir: %w", err)
	}
	var recs []*record
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			if strings.Contains(name, ".tmp-") {
				os.Remove(filepath.Join(st.dir, name))
			}
			continue
		}
		full := filepath.Join(st.dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("jobs: read %s: %w", name, err)
		}
		var r record
		if err := json.Unmarshal(data, &r); err != nil || r.ID == "" {
			os.Rename(full, full+".corrupt")
			continue
		}
		recs = append(recs, &r)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Created.Equal(recs[j].Created) {
			return recs[i].Created.Before(recs[j].Created)
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, nil
}
