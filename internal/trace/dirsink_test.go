package trace

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// endTraceWithDuration completes a trace named name whose root lasts
// exactly dur under a controllable clock.
func endTraceWithDuration(t *testing.T, tracer *Tracer, clock *settableClock, name string, dur time.Duration) *Trace {
	t.Helper()
	_, root := tracer.StartRoot(context.Background(), name, "")
	clock.Advance(dur)
	root.End()
	return root.Trace()
}

// settableClock advances only when told to, so trace durations are
// exact.
type settableClock struct {
	now time.Time
}

func (c *settableClock) Now() time.Time          { return c.now }
func (c *settableClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestDirSinkKeepsSlowest(t *testing.T) {
	dir := t.TempDir()
	clock := &settableClock{now: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
	tracer := New(Config{Now: clock.Now})
	ds, err := NewDirSink(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	tracer.AddSink(ds.Add)

	slow := endTraceWithDuration(t, tracer, clock, "map", 300*time.Millisecond)
	fast := endTraceWithDuration(t, tracer, clock, "map", 10*time.Millisecond)
	mid := endTraceWithDuration(t, tracer, clock, "map", 100*time.Millisecond)
	slower := endTraceWithDuration(t, tracer, clock, "map", 500*time.Millisecond)
	// Different category has its own budget.
	other := endTraceWithDuration(t, tracer, clock, "verify", 1*time.Millisecond)

	files, err := filepath.Glob(filepath.Join(dir, "map-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("kept %d map traces, want 2: %v", len(files), files)
	}
	kept := strings.Join(files, " ")
	for _, want := range []*Trace{slow, slower} {
		if !strings.Contains(kept, want.ID()) {
			t.Fatalf("slowest trace %s (%s) not retained; kept %v", want.ID(), want.Duration(), files)
		}
	}
	for _, evicted := range []*Trace{fast, mid} {
		if strings.Contains(kept, evicted.ID()) {
			t.Fatalf("faster trace %s (%s) survived retention; kept %v", evicted.ID(), evicted.Duration(), files)
		}
	}
	otherFiles, _ := filepath.Glob(filepath.Join(dir, "verify-*.json"))
	if len(otherFiles) != 1 || !strings.Contains(otherFiles[0], other.ID()) {
		t.Fatalf("verify category files wrong: %v", otherFiles)
	}

	// Every surviving file validates as Perfetto JSON.
	for _, f := range append(files, otherFiles...) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePerfetto(data); err != nil {
			t.Fatalf("%s fails schema: %v", f, err)
		}
	}
}

func TestDirSinkMaxFiles(t *testing.T) {
	dir := t.TempDir()
	clock := &settableClock{now: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
	tracer := New(Config{Now: clock.Now})
	// Generous per-category budget, tight global cap: the cap is what
	// binds.
	ds, err := NewDirSinkLimited(dir, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	tracer.AddSink(ds.Add)

	// Six categories, one trace each, written in order. Only the three
	// newest survive the cap.
	var traces []*Trace
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		traces = append(traces, endTraceWithDuration(t, tracer, clock, name, 10*time.Millisecond))
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("kept %d files, want 3: %v", len(files), files)
	}
	kept := strings.Join(files, " ")
	for _, tr := range traces[:3] {
		if strings.Contains(kept, tr.ID()) {
			t.Fatalf("oldest trace %s survived the cap; kept %v", tr.ID(), files)
		}
	}
	for _, tr := range traces[3:] {
		if !strings.Contains(kept, tr.ID()) {
			t.Fatalf("newest trace %s evicted; kept %v", tr.ID(), files)
		}
	}

	// The per-category slowest-keep still applies under the cap: a
	// faster duplicate of a retained category is rejected outright.
	before := len(glob(t, dir))
	if before != 3 {
		t.Fatalf("setup drifted: %d files", before)
	}
	capped, err := NewDirSinkLimited(t.TempDir(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tracer2 := New(Config{Now: clock.Now})
	tracer2.AddSink(capped.Add)
	slow := endTraceWithDuration(t, tracer2, clock, "map", 100*time.Millisecond)
	endTraceWithDuration(t, tracer2, clock, "map", time.Millisecond) // faster: rejected by keep=1
	files2 := glob(t, capped.dir)
	if len(files2) != 1 || !strings.Contains(files2[0], slow.ID()) {
		t.Fatalf("per-category keep broken under cap: %v", files2)
	}
}

func glob(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestDirSinkSanitizesCategory(t *testing.T) {
	dir := t.TempDir()
	clock := &settableClock{now: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
	tracer := New(Config{Now: clock.Now})
	ds, err := NewDirSink(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	tracer.AddSink(ds.Add)
	endTraceWithDuration(t, tracer, clock, "/v1/map", 5*time.Millisecond)
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 || !strings.Contains(filepath.Base(files[0]), "_v1_map-") {
		t.Fatalf("sanitized filename wrong: %v", files)
	}
}
