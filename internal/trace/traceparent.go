package trace

// W3C Trace Context `traceparent` handling. The header joins mapserve
// requests into callers' distributed traces:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// We accept version 00 (and, per spec, parse unknown future versions
// leniently by their 00-shaped prefix), reject the reserved version ff
// and all-zero ids, and always emit version 00 with the sampled flag.

// traceparentLen is the exact length of a version-00 header.
const traceparentLen = 55

// ParseTraceparent extracts the trace id and parent span id from a
// traceparent header value. ok is false for anything malformed; callers
// then start a fresh trace.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) < traceparentLen {
		return "", "", false
	}
	// version "ff" is forbidden; other unknown versions are parsed by
	// the fixed-width prefix as the spec directs.
	if !isLowerHex(h[0:2]) || h[0:2] == "ff" {
		return "", "", false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if len(h) > traceparentLen && h[traceparentLen] != '-' {
		return "", "", false
	}
	traceID = h[3:35]
	parentID = h[36:52]
	if !validTraceID(traceID) || !validSpanID(parentID) || !isLowerHex(h[53:55]) {
		return "", "", false
	}
	return traceID, parentID, true
}

// Traceparent renders a version-00, sampled traceparent header for the
// given trace and span ids.
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// validTraceID reports whether s is a well-formed, nonzero 32-digit
// lowercase hex trace id.
func validTraceID(s string) bool {
	return len(s) == 32 && isLowerHex(s) && !allZero(s)
}

// validSpanID reports whether s is a well-formed, nonzero 16-digit
// lowercase hex span id.
func validSpanID(s string) bool {
	return len(s) == 16 && isLowerHex(s) && !allZero(s)
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
