package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// endTrace makes one completed single-span trace named name on tracer
// tr and returns it.
func endTrace(t *testing.T, tr *Tracer, name string) *Trace {
	t.Helper()
	_, root := tr.StartRoot(context.Background(), name, "")
	root.End()
	return root.Trace()
}

func TestRegistryEvictionOrder(t *testing.T) {
	tracer := New(Config{Now: newFakeClock(time.Millisecond).Now})
	r := NewRegistry(3)
	tracer.AddSink(r.Add)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := endTrace(t, tracer, fmt.Sprintf("t%d", i))
		ids = append(ids, tr.ID())
	}
	got := r.Traces()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	// Newest first: t4, t3, t2; t0 and t1 evicted.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if got[i].ID() != want {
			t.Fatalf("Traces()[%d] = %s (%s), want %s", i, got[i].ID(), got[i].Name(), want)
		}
	}
	if r.Lookup(ids[0]) != nil || r.Lookup(ids[1]) != nil {
		t.Fatal("evicted traces still resolvable by Lookup")
	}
	if r.Lookup(ids[4]) == nil {
		t.Fatal("retained trace not resolvable by Lookup")
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestRegistryPartialFill(t *testing.T) {
	tracer := New(Config{})
	r := NewRegistry(8)
	a := endTrace(t, tracer, "a")
	r.Add(a)
	b := endTrace(t, tracer, "b")
	r.Add(b)
	got := r.Traces()
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("partial ring order wrong: %v", got)
	}
}

func TestHandlerListAndDetail(t *testing.T) {
	tracer := New(Config{Now: newFakeClock(time.Millisecond).Now})
	r := NewRegistry(4)
	tracer.AddSink(r.Add)

	ctx, root := tracer.StartRoot(context.Background(), "map", "")
	_, child := Start(ctx, "joint-search")
	child.SetInt("candidates", 9)
	child.End()
	root.End()
	id := root.TraceID()

	h := Handler(r, func() any { return map[string]any{"status": "ok"} }, func() []Exemplar {
		return []Exemplar{{Bucket: "0.1", TraceID: id, ValueMS: 42.5, UnixMS: 1700000000000}}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(url string) (int, string, string) {
		t.Helper()
		res, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, res.Header.Get("Content-Type"), string(body)
	}

	// HTML list shows the trace id, the status block, and a detail link.
	code, ctype, body := get(srv.URL)
	if code != 200 || !strings.Contains(ctype, "text/html") {
		t.Fatalf("list: code %d ctype %s", code, ctype)
	}
	for _, want := range []string{id, "status", "?id=" + id, "latency exemplars", "42.500ms"} {
		if !strings.Contains(body, want) {
			t.Fatalf("HTML list missing %q:\n%s", want, body)
		}
	}

	// JSON list parses and carries the trace plus the status object.
	code, _, body = get(srv.URL + "?format=json")
	if code != 200 {
		t.Fatalf("json list code %d", code)
	}
	var list struct {
		Traces []traceInfo    `json:"traces"`
		Total  int64          `json:"total"`
		Status map[string]any `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("json list does not parse: %v", err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id || list.Traces[0].Spans != 2 {
		t.Fatalf("json list wrong: %+v", list)
	}
	if list.Status["status"] != "ok" {
		t.Fatalf("json list missing status: %+v", list.Status)
	}

	// HTML detail shows the nested child span with its attribute.
	code, _, body = get(srv.URL + "?id=" + id)
	if code != 200 {
		t.Fatalf("detail code %d", code)
	}
	for _, want := range []string{"joint-search", "candidates=9"} {
		if !strings.Contains(body, want) {
			t.Fatalf("HTML detail missing %q:\n%s", want, body)
		}
	}

	// JSON detail carries the span tree.
	code, _, body = get(srv.URL + "?id=" + id + "&format=json")
	if code != 200 {
		t.Fatalf("json detail code %d", code)
	}
	var detail struct {
		TraceID string   `json:"trace_id"`
		Root    spanJSON `json:"root"`
	}
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.TraceID != id || len(detail.Root.Children) != 1 || detail.Root.Children[0].Name != "joint-search" {
		t.Fatalf("json detail wrong: %+v", detail)
	}

	// Perfetto export validates against the schema.
	code, ctype, body = get(srv.URL + "?id=" + id + "&format=perfetto")
	if code != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("perfetto: code %d ctype %s", code, ctype)
	}
	if err := ValidatePerfetto([]byte(body)); err != nil {
		t.Fatalf("perfetto export from handler fails schema: %v", err)
	}

	// Unknown id is a 404; non-GET a 405.
	if code, _, _ = get(srv.URL + "?id=" + strings.Repeat("0", 31) + "1"); code != 404 {
		t.Fatalf("unknown id code %d, want 404", code)
	}
	res, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 405 {
		t.Fatalf("POST code %d, want 405", res.StatusCode)
	}
}
