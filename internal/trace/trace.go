// Package trace is a zero-dependency, context-propagated span tracer
// for the search and service layers: a request (or a CLI invocation)
// opens a root span, and every layer below it — joint search, inner Π
// searches, cost levels, verification stages — attaches child spans
// through the context. Completed traces flow to pluggable sinks: the
// ring-buffer Registry behind GET /debug/requests, the per-endpoint
// slowest-N DirSink behind mapserve -trace-dir, and the single-file
// Perfetto export behind mapfind -trace.
//
// The disabled path is a nil check: when no tracer is installed in the
// context, Start returns a nil *Span whose methods are no-ops and
// allocates nothing, so instrumented hot loops cost one context lookup
// per span site (never per candidate — span sites are placed at worker,
// search and level granularity).
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds the spans retained per trace; spans started
// beyond it are dropped (counted, never blocking the caller). A joint
// search over hundreds of space candidates opens a few spans per inner
// search, so the default holds complete traces for every workload in
// this repository while bounding worst-case memory.
const DefaultMaxSpans = 4096

// Config sizes a Tracer.
type Config struct {
	// MaxSpans bounds the spans retained per trace (≤ 0 selects
	// DefaultMaxSpans). The root span always fits.
	MaxSpans int
	// Now substitutes the clock (tests use a fake for deterministic
	// exports); nil selects time.Now.
	Now func() time.Time
}

// Tracer creates traces and fans completed ones out to its sinks. All
// methods are safe for concurrent use. A nil *Tracer is a valid,
// permanently disabled tracer.
type Tracer struct {
	maxSpans int64
	now      func() time.Time

	mu    sync.Mutex
	sinks []func(*Trace)

	started  atomic.Int64 // spans started (incl. the roots)
	dropped  atomic.Int64 // spans dropped by the per-trace cap
	finished atomic.Int64 // root spans ended
}

// New builds a Tracer (zero Config = all defaults).
func New(cfg Config) *Tracer {
	t := &Tracer{maxSpans: int64(cfg.MaxSpans), now: cfg.Now}
	if t.maxSpans <= 0 {
		t.maxSpans = DefaultMaxSpans
	}
	if t.now == nil {
		t.now = time.Now
	}
	return t
}

// AddSink registers fn to run on every completed trace (synchronously,
// after the root span ends, in the ending goroutine).
func (t *Tracer) AddSink(fn func(*Trace)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, fn)
	t.mu.Unlock()
}

// Counters reports the tracer's lifetime totals: spans started, spans
// dropped by the per-trace cap, and traces finished. A nil tracer
// reports zeros.
func (t *Tracer) Counters() (started, dropped, finished int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.started.Load(), t.dropped.Load(), t.finished.Load()
}

// StartRoot opens a new trace rooted at a span named name and returns
// a context carrying the root span. traceID joins an existing
// distributed trace (32 lowercase hex digits, from ParseTraceparent);
// empty or malformed IDs are replaced by a fresh random one. On a nil
// tracer it returns ctx unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name, traceID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if !validTraceID(traceID) {
		traceID = newTraceID()
	}
	tr := &Trace{tracer: t, id: traceID, name: name, start: t.now()}
	root := &Span{tr: tr, id: 1, name: name, startNs: tr.start.UnixNano()}
	tr.root = root
	tr.nextID.Store(1)
	tr.spans.Store(1)
	t.started.Add(1)
	return withSpan(ctx, root), root
}

// Trace is one tree of spans sharing a trace ID. Reads are safe while
// spans are still being added and ended — sinks may receive a trace
// whose detached descendants (e.g. a singleflight search outliving its
// leader) are still running.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time
	root   *Span

	nextID  atomic.Int64
	spans   atomic.Int64
	dropped atomic.Int64
	endNs   atomic.Int64 // root end, 0 while open
}

// ID returns the 32-hex-digit trace identifier.
func (tr *Trace) ID() string { return tr.id }

// Name returns the root span's name (the request endpoint for service
// traces).
func (tr *Trace) Name() string { return tr.name }

// StartTime returns when the root span opened.
func (tr *Trace) StartTime() time.Time { return tr.start }

// Root returns the root span.
func (tr *Trace) Root() *Span { return tr.root }

// SpanCount returns the number of retained spans.
func (tr *Trace) SpanCount() int64 { return tr.spans.Load() }

// Dropped returns the number of spans dropped by the per-trace cap.
func (tr *Trace) Dropped() int64 { return tr.dropped.Load() }

// Ended reports whether the root span has ended.
func (tr *Trace) Ended() bool { return tr.endNs.Load() != 0 }

// Duration returns the root span's duration (elapsed-so-far while the
// root is still open).
func (tr *Trace) Duration() time.Duration {
	end := tr.endNs.Load()
	if end == 0 {
		return tr.tracer.now().Sub(tr.start)
	}
	return time.Duration(end - tr.start.UnixNano())
}

// Summary returns the compact reference attached to search results.
func (tr *Trace) Summary() *Summary {
	return &Summary{TraceID: tr.id, Spans: tr.spans.Load(), Dropped: tr.dropped.Load()}
}

// Summary is a compact trace reference: enough to find the full trace
// in the /debug/requests inspector or a -trace-dir export without
// carrying the span tree around.
type Summary struct {
	TraceID string `json:"trace_id"`
	Spans   int64  `json:"spans"`
	Dropped int64  `json:"dropped,omitempty"`
}

// Attr is one key/value annotation on a span. Values are either int64
// or string — typed fields instead of an interface so that annotating
// a span never boxes (and the disabled path never allocates).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Value renders the attribute's value for export.
func (a Attr) Value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Int
}

// Span is one timed operation in a trace. A nil *Span (the disabled
// path) accepts every method as a no-op. A span's attributes and
// children may be written from the goroutine tree it was handed to;
// concurrent child creation and concurrent export are safe.
type Span struct {
	tr      *Trace
	parent  *Span
	id      int64
	name    string
	startNs int64
	endNs   atomic.Int64

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

// spanKey carries the active span through contexts.
type spanKey struct{}

// withSpan returns ctx carrying s as the active span.
func withSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the active span, or nil when tracing is off.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SummaryFromContext returns the active trace's summary, or nil when
// tracing is off.
func SummaryFromContext(ctx context.Context) *Summary {
	if s := FromContext(ctx); s != nil {
		return s.tr.Summary()
	}
	return nil
}

// Start opens a child of the context's active span and returns a
// context carrying it. When the context carries no span (tracing off)
// or the per-trace span cap is reached, it returns ctx unchanged and a
// nil span — one context lookup, zero allocations.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.newChild(name)
	if child == nil {
		return ctx, nil
	}
	return withSpan(ctx, child), child
}

// newChild allocates and links a child span, honoring the per-trace
// cap.
func (s *Span) newChild(name string) *Span {
	tr := s.tr
	if n := tr.spans.Add(1); n > tr.tracer.maxSpans {
		tr.spans.Add(-1)
		tr.dropped.Add(1)
		tr.tracer.dropped.Add(1)
		return nil
	}
	tr.tracer.started.Add(1)
	child := &Span{
		tr:      tr,
		parent:  s,
		id:      tr.nextID.Add(1),
		name:    name,
		startNs: tr.tracer.now().UnixNano(),
	}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// Children returns a snapshot of the span's child spans in creation
// order (nil on a nil span). Safe to call while children are still
// being added.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span{}, s.children...)
}

// Attrs returns a snapshot of the span's attributes in insertion order
// (nil on a nil span).
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr{}, s.attrs...)
}

// Trace returns the span's trace (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// TraceID returns the owning trace's ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// IDHex returns the span's ID as the 16-hex-digit form traceparent
// uses ("" on a nil span). IDs are sequential per trace starting at 1,
// so they are never the all-zero invalid value.
func (s *Span) IDHex() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(s.id))
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	s.mu.Unlock()
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	s.mu.Unlock()
}

// End closes the span (idempotent; later Ends are ignored). Ending the
// root span finishes the trace and runs the tracer's sinks
// synchronously in the calling goroutine.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.tracer.now().UnixNano()
	if !s.endNs.CompareAndSwap(0, now) {
		return
	}
	if s.parent != nil {
		return
	}
	tr := s.tr
	tr.endNs.Store(now)
	t := tr.tracer
	t.finished.Add(1)
	t.mu.Lock()
	sinks := append([]func(*Trace){}, t.sinks...)
	t.mu.Unlock()
	for _, fn := range sinks {
		fn(tr)
	}
}

// Ended reports whether the span has ended.
func (s *Span) Ended() bool {
	if s == nil {
		return true
	}
	return s.endNs.Load() != 0
}

// Duration returns the span's duration (elapsed-so-far while open; 0
// on a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	end := s.endNs.Load()
	if end == 0 {
		end = s.tr.tracer.now().UnixNano()
	}
	return time.Duration(end - s.startNs)
}

// snapshot copies the span's mutable state for export. end is 0 for a
// still-open span; the exporter substitutes the export instant.
type snapshot struct {
	id       int64
	name     string
	startNs  int64
	endNs    int64
	attrs    []Attr
	children []*snapshot
}

// snap recursively snapshots the subtree under its locks.
func (s *Span) snap() *snapshot {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	out := &snapshot{id: s.id, name: s.name, startNs: s.startNs, endNs: s.endNs.Load(), attrs: attrs}
	out.children = make([]*snapshot, len(kids))
	for i, k := range kids {
		out.children[i] = k.snap()
	}
	return out
}

// newTraceID returns 32 random lowercase hex digits (the W3C trace-id
// shape). On entropy failure it degrades to a counter — traces stay
// distinguishable, requests never fail on observability.
func newTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%032x", uint64(fallbackTraceID.Add(1)))
	}
	return hex.EncodeToString(b[:])
}

var fallbackTraceID atomic.Int64
