package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildGoldenTrace assembles a deterministic trace under a fake clock:
// a request root, a joint search with two overlapping workers (lane
// split in the export), and a verification stage — the span taxonomy
// the service layers emit.
func buildGoldenTrace() *Trace {
	clock := newFakeClock(time.Millisecond)
	tr := New(Config{Now: clock.Now})
	ctx, root := tr.StartRoot(context.Background(), "map", "4bf92f3577b34da6a3ce929d0e0e4736")
	root.SetStr("request_id", "deadbeefcafe0123")

	jctx, joint := Start(ctx, "joint-search")
	joint.SetInt("dims", 1)
	_, w0 := Start(jctx, "worker")
	w0.SetInt("worker", 0)
	_, w1 := Start(jctx, "worker") // overlaps w0 → separate lane
	w1.SetInt("worker", 1)
	_, pi := Start(jctx, "pi-search")
	pi.SetInt("candidates", 12)
	pi.End()
	w0.End()
	w1.End()
	joint.SetInt("space_candidates", 24)
	joint.End()

	_, ver := Start(ctx, "verify")
	ver.SetStr("verdict", "valid")
	ver.End()

	root.End()
	return root.Trace()
}

func TestWritePerfettoGolden(t *testing.T) {
	tr := buildGoldenTrace()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	got := buf.String()

	path := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -update ./internal/trace/`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("perfetto export differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePerfettoValidatesOwnSchema(t *testing.T) {
	tr := buildGoldenTrace()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatalf("export fails its own schema: %v", err)
	}
}

func TestWritePerfettoLaneAssignment(t *testing.T) {
	tr := buildGoldenTrace()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Decode back and check the two overlapping workers landed on
	// different lanes while the sequential verify span reuses lane 0.
	var f perfettoFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	lanes := map[string][]int64{}
	for _, ev := range f.TraceEvents {
		lanes[ev.Name] = append(lanes[ev.Name], ev.Tid)
	}
	w := lanes["worker"]
	if len(w) != 2 || w[0] == w[1] {
		t.Fatalf("overlapping workers share a lane: %v", w)
	}
	if got := lanes["map"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("root lane = %v, want [0]", got)
	}
}

func TestValidatePerfettoRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"no events":      `{"displayTimeUnit":"ms","traceEvents":[]}`,
		"bad time unit":  `{"displayTimeUnit":"ns","traceEvents":[{"name":"x","cat":"lodim","ph":"X","ts":0,"dur":1,"pid":1,"tid":0,"args":{"span_id":1}}]}`,
		"wrong phase":    `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","cat":"lodim","ph":"B","ts":0,"dur":1,"pid":1,"tid":0,"args":{"span_id":1}}]}`,
		"missing spanid": `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","cat":"lodim","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]}`,
		"negative ts":    `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","cat":"lodim","ph":"X","ts":-5,"dur":1,"pid":1,"tid":0,"args":{"span_id":1}}]}`,
	}
	for name, body := range cases {
		if err := ValidatePerfetto([]byte(body)); err == nil {
			t.Errorf("%s: ValidatePerfetto accepted malformed input", name)
		}
	}
}

func TestWritePerfettoOpenSpan(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tracer := New(Config{Now: clock.Now})
	ctx, root := tracer.StartRoot(context.Background(), "map", "")
	_, child := Start(ctx, "search") // never ended: a live in-flight trace
	_ = child
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, root.Trace()); err != nil {
		t.Fatalf("WritePerfetto on a live trace: %v", err)
	}
	if err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatalf("live-trace export fails schema: %v", err)
	}
}
