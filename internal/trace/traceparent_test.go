package trace

import "testing"

func TestParseTraceparent(t *testing.T) {
	const trID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const spID = "00f067aa0ba902b7"
	cases := []struct {
		name   string
		header string
		ok     bool
	}{
		{"canonical", "00-" + trID + "-" + spID + "-01", true},
		{"not sampled", "00-" + trID + "-" + spID + "-00", true},
		{"future version", "cc-" + trID + "-" + spID + "-01", true},
		{"future version with suffix", "cc-" + trID + "-" + spID + "-01-extra", true},
		{"version ff forbidden", "ff-" + trID + "-" + spID + "-01", false},
		{"too short", "00-" + trID + "-" + spID, false},
		{"zero trace id", "00-00000000000000000000000000000000-" + spID + "-01", false},
		{"zero span id", "00-" + trID + "-0000000000000000-01", false},
		{"uppercase hex", "00-" + "4BF92F3577B34DA6A3CE929D0E0E4736" + "-" + spID + "-01", false},
		{"bad separators", "00_" + trID + "_" + spID + "_01", false},
		{"v00 with trailing junk", "00-" + trID + "-" + spID + "-01extra", false},
		{"empty", "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gotTr, gotSp, ok := ParseTraceparent(c.header)
			if ok != c.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", c.header, ok, c.ok)
			}
			if ok && (gotTr != trID || gotSp != spID) {
				t.Fatalf("parsed (%q, %q), want (%q, %q)", gotTr, gotSp, trID, spID)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	const trID = "0af7651916cd43dd8448eb211c80319c"
	const spID = "b7ad6b7169203331"
	h := Traceparent(trID, spID)
	if h != "00-"+trID+"-"+spID+"-01" {
		t.Fatalf("Traceparent = %q", h)
	}
	gotTr, gotSp, ok := ParseTraceparent(h)
	if !ok || gotTr != trID || gotSp != spID {
		t.Fatalf("round trip failed: (%q, %q, %v)", gotTr, gotSp, ok)
	}
}
