package trace

// Chrome trace-event ("Perfetto JSON") export. The output loads
// directly into https://ui.perfetto.dev or chrome://tracing: every
// span becomes one complete ("ph":"X") event with microsecond
// timestamps relative to the trace start, and overlapping sibling
// spans (parallel search workers) are spread across thread lanes so
// the UI renders them side by side instead of stacking them into one
// mangled row.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// perfettoFile is the top-level Chrome trace-event JSON object.
type perfettoFile struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       map[string]any  `json:"otherData,omitempty"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// perfettoEvent is one complete ("X") trace event.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // µs since trace start
	Dur  int64          `json:"dur"` // µs
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto writes tr as Chrome trace-event JSON. It is safe to
// call on a live trace: still-open spans are exported with their
// elapsed-so-far duration.
func WritePerfetto(w io.Writer, tr *Trace) error {
	root := tr.root.snap()
	nowNs := tr.tracer.now().UnixNano()

	var events []perfettoEvent
	lanes := int64(0) // next unallocated lane
	var walk func(s *snapshot, lane int64)
	walk = func(s *snapshot, lane int64) {
		end := s.endNs
		if end == 0 {
			end = nowNs
		}
		args := make(map[string]any, len(s.attrs)+1)
		args["span_id"] = s.id
		for _, a := range s.attrs {
			args[a.Key] = a.Value()
		}
		events = append(events, perfettoEvent{
			Name: s.name,
			Cat:  "lodim",
			Ph:   "X",
			Ts:   (s.startNs - tr.start.UnixNano()) / 1e3,
			Dur:  (end - s.startNs) / 1e3,
			Pid:  1,
			Tid:  lane,
			Args: args,
		})
		// Children sorted by start time, then greedy interval
		// partitioning: the first child inherits the parent's lane;
		// a child overlapping every open lane gets a fresh one.
		kids := append([]*snapshot(nil), s.children...)
		sort.SliceStable(kids, func(i, j int) bool {
			if kids[i].startNs != kids[j].startNs {
				return kids[i].startNs < kids[j].startNs
			}
			return kids[i].id < kids[j].id
		})
		type openLane struct {
			lane  int64
			endNs int64
		}
		open := []openLane{}
		for i, k := range kids {
			kEnd := k.endNs
			if kEnd == 0 {
				kEnd = nowNs
			}
			assigned := int64(-1)
			for j := range open {
				if open[j].endNs <= k.startNs {
					assigned = open[j].lane
					open[j].endNs = kEnd
					break
				}
			}
			if assigned == -1 {
				if i == 0 {
					assigned = lane
				} else {
					lanes++
					assigned = lanes
				}
				open = append(open, openLane{lane: assigned, endNs: kEnd})
			}
			walk(k, assigned)
		}
	}
	walk(root, 0)

	file := perfettoFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"trace_id":   tr.id,
			"trace_name": tr.name,
		},
		TraceEvents: events,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// ValidatePerfetto structurally validates data against the trace-event
// schema WritePerfetto emits: a displayTimeUnit, at least one complete
// event, and per event a name, cat "lodim", ph "X", non-negative
// ts/dur, and a nonzero span_id arg. Tests use it as the golden schema
// check for exported traces.
func ValidatePerfetto(data []byte) error {
	var f perfettoFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("perfetto: not valid JSON: %w", err)
	}
	if f.DisplayTimeUnit != "ms" {
		return fmt.Errorf("perfetto: displayTimeUnit %q, want \"ms\"", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("perfetto: no traceEvents")
	}
	for i, ev := range f.TraceEvents {
		switch {
		case ev.Name == "":
			return fmt.Errorf("perfetto: event %d has no name", i)
		case ev.Ph != "X":
			return fmt.Errorf("perfetto: event %d (%s) ph %q, want \"X\"", i, ev.Name, ev.Ph)
		case ev.Cat != "lodim":
			return fmt.Errorf("perfetto: event %d (%s) cat %q, want \"lodim\"", i, ev.Name, ev.Cat)
		case ev.Ts < 0 || ev.Dur < 0:
			return fmt.Errorf("perfetto: event %d (%s) negative ts/dur (%d, %d)", i, ev.Name, ev.Ts, ev.Dur)
		case ev.Pid != 1:
			return fmt.Errorf("perfetto: event %d (%s) pid %d, want 1", i, ev.Name, ev.Pid)
		}
		id, ok := ev.Args["span_id"]
		if !ok {
			return fmt.Errorf("perfetto: event %d (%s) missing span_id arg", i, ev.Name)
		}
		if n, ok := id.(float64); !ok || n < 1 {
			return fmt.Errorf("perfetto: event %d (%s) bad span_id %v", i, ev.Name, id)
		}
	}
	return nil
}
