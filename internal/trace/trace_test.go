package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic test clock advancing a fixed step per
// call, so span timings and exports are byte-stable.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{
		now:  time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		step: step,
	}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestStartRootAndChildren(t *testing.T) {
	tr := New(Config{Now: newFakeClock(time.Millisecond).Now})
	ctx, root := tr.StartRoot(context.Background(), "request", "")
	if root == nil {
		t.Fatal("StartRoot returned nil span on a live tracer")
	}
	if got := root.TraceID(); len(got) != 32 {
		t.Fatalf("trace id %q is not 32 hex digits", got)
	}
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}

	cctx, child := Start(ctx, "search")
	if child == nil {
		t.Fatal("Start returned nil child under a live root")
	}
	if FromContext(cctx) != child {
		t.Fatal("child context does not carry the child span")
	}
	child.SetInt("candidates", 42)
	child.SetStr("engine", "joint-6.2")
	child.End()
	if !child.Ended() {
		t.Fatal("child not ended after End")
	}
	if child.Duration() <= 0 {
		t.Fatalf("child duration %v not positive under advancing clock", child.Duration())
	}

	root.End()
	trace := root.Trace()
	if !trace.Ended() {
		t.Fatal("trace not ended after root End")
	}
	if got := trace.SpanCount(); got != 2 {
		t.Fatalf("SpanCount = %d, want 2", got)
	}
	sum := trace.Summary()
	if sum.TraceID != trace.ID() || sum.Spans != 2 || sum.Dropped != 0 {
		t.Fatalf("bad summary %+v", sum)
	}
}

func TestStartRootJoinsSuppliedTraceID(t *testing.T) {
	tr := New(Config{})
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	_, root := tr.StartRoot(context.Background(), "r", id)
	if root.TraceID() != id {
		t.Fatalf("TraceID = %q, want joined id %q", root.TraceID(), id)
	}
	// Malformed ids are replaced, not propagated.
	_, root2 := tr.StartRoot(context.Background(), "r", "not-hex")
	if root2.TraceID() == "not-hex" || len(root2.TraceID()) != 32 {
		t.Fatalf("malformed supplied id leaked through: %q", root2.TraceID())
	}
}

func TestDisabledPathIsNilSafe(t *testing.T) {
	ctx := context.Background()
	// No tracer in context: Start must hand back ctx unchanged.
	got, s := Start(ctx, "anything")
	if s != nil || got != ctx {
		t.Fatal("Start on an untraced context must return (ctx, nil)")
	}
	// Every method on the nil span is a no-op.
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	s.End()
	if !s.Ended() || s.Duration() != 0 || s.TraceID() != "" || s.IDHex() != "" || s.Trace() != nil {
		t.Fatal("nil span accessors returned non-zero values")
	}
	if SummaryFromContext(ctx) != nil {
		t.Fatal("SummaryFromContext on untraced context must be nil")
	}
	// Nil tracer: StartRoot is a no-op too.
	var nilT *Tracer
	got, s = nilT.StartRoot(ctx, "r", "")
	if s != nil || got != ctx {
		t.Fatal("nil tracer StartRoot must return (ctx, nil)")
	}
	nilT.AddSink(func(*Trace) {})
	if a, b, c := nilT.Counters(); a != 0 || b != 0 || c != 0 {
		t.Fatal("nil tracer counters must be zero")
	}
}

// TestDisabledPathAllocations locks the zero-allocation guarantee for
// the disabled tracer: an instrumented hot loop with tracing off must
// not allocate at the span sites.
func TestDisabledPathAllocations(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, s := Start(ctx, "joint-search")
		s.SetInt("candidates", 7)
		s.SetStr("engine", "joint-6.2")
		s.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

// TestConcurrentSpans exercises parallel child creation, annotation and
// end under the race detector — the shape of a joint search fan-out.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "joint", "")
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, ws := Start(ctx, "worker")
			ws.SetInt("worker", int64(w))
			for i := 0; i < perWorker; i++ {
				_, s := Start(wctx, "pi-search")
				s.SetInt("candidate", int64(i))
				s.End()
			}
			ws.End()
		}(w)
	}
	wg.Wait()
	root.End()
	want := int64(1 + workers + workers*perWorker)
	if got := root.Trace().SpanCount(); got != want {
		t.Fatalf("SpanCount = %d, want %d", got, want)
	}
	started, dropped, finished := tr.Counters()
	if started != want || dropped != 0 || finished != 1 {
		t.Fatalf("Counters = (%d,%d,%d), want (%d,0,1)", started, dropped, finished, want)
	}
}

func TestMaxSpansDropsAndCounts(t *testing.T) {
	tr := New(Config{MaxSpans: 3})
	ctx, root := tr.StartRoot(context.Background(), "r", "")
	var kept, droppedSpans int
	for i := 0; i < 10; i++ {
		c, s := Start(ctx, "child")
		if s == nil {
			droppedSpans++
			if c != ctx {
				t.Fatal("dropped Start must return ctx unchanged")
			}
		} else {
			kept++
			s.End()
		}
	}
	root.End()
	if kept != 2 || droppedSpans != 8 {
		t.Fatalf("kept %d dropped %d, want 2 and 8 under MaxSpans=3", kept, droppedSpans)
	}
	if got := root.Trace().Dropped(); got != 8 {
		t.Fatalf("Trace.Dropped = %d, want 8", got)
	}
	if _, d, _ := tr.Counters(); d != 8 {
		t.Fatalf("tracer dropped counter = %d, want 8", d)
	}
}

func TestEndIsIdempotentAndSinksFireOnce(t *testing.T) {
	tr := New(Config{Now: newFakeClock(time.Millisecond).Now})
	var fired int
	var sunk *Trace
	tr.AddSink(func(trc *Trace) { fired++; sunk = trc })
	_, root := tr.StartRoot(context.Background(), "r", "")
	root.End()
	first := root.Duration()
	root.End()
	root.End()
	if fired != 1 {
		t.Fatalf("sink fired %d times, want 1", fired)
	}
	if sunk != root.Trace() {
		t.Fatal("sink received a different trace")
	}
	if root.Duration() != first {
		t.Fatal("second End changed the recorded duration")
	}
}

func TestSpanIDHexIsTraceparentShaped(t *testing.T) {
	tr := New(Config{})
	ctx, root := tr.StartRoot(context.Background(), "r", "")
	_, child := Start(ctx, "c")
	for _, s := range []*Span{root, child} {
		id := s.IDHex()
		if len(id) != 16 || !isLowerHex(id) || allZero(id) {
			t.Fatalf("IDHex %q is not a valid traceparent span id", id)
		}
	}
	if root.IDHex() == child.IDHex() {
		t.Fatal("root and child share a span id")
	}
	hdr := Traceparent(root.TraceID(), root.IDHex())
	if _, _, ok := ParseTraceparent(hdr); !ok {
		t.Fatalf("emitted traceparent %q does not round-trip", hdr)
	}
}

func TestOpenSpanDurationAdvances(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	tr := New(Config{Now: clock.Now})
	_, root := tr.StartRoot(context.Background(), "r", "")
	d1 := root.Duration()
	d2 := root.Duration()
	if d2 <= d1 {
		t.Fatalf("open span duration did not advance: %v then %v", d1, d2)
	}
	if strings.Contains(root.Name(), " ") {
		t.Fatalf("unexpected span name %q", root.Name())
	}
}
