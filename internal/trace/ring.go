package trace

// Registry is the live-inspector sink: a fixed-size ring of the most
// recently completed traces, served as HTML and JSON by Handler. The
// ring holds pointers and copies nothing at insert, so the sink adds
// one short critical section per request.

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry retains the last N completed traces.
type Registry struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total int64
}

// NewRegistry builds a registry retaining n traces (n ≤ 0 selects 64).
func NewRegistry(n int) *Registry {
	if n <= 0 {
		n = 64
	}
	return &Registry{buf: make([]*Trace, n)}
}

// Add inserts a completed trace, evicting the oldest when full. It has
// the sink signature for Tracer.AddSink.
func (r *Registry) Add(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many traces have ever been added.
func (r *Registry) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Traces returns the retained traces, newest first.
func (r *Registry) Traces() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		if tr := r.buf[(r.next-i+len(r.buf))%len(r.buf)]; tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Lookup returns the retained trace with the given id, or nil.
func (r *Registry) Lookup(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tr := range r.buf {
		if tr != nil && tr.id == id {
			return tr
		}
	}
	return nil
}

// traceInfo is the JSON list form of one retained trace.
type traceInfo struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int64     `json:"spans"`
	Dropped    int64     `json:"dropped,omitempty"`
}

// spanJSON is the JSON detail form of one span subtree.
type spanJSON struct {
	SpanID     int64          `json:"span_id"`
	Name       string         `json:"name"`
	StartUs    int64          `json:"start_us"` // since trace start
	DurationUs int64          `json:"duration_us"`
	Open       bool           `json:"open,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*spanJSON    `json:"children,omitempty"`
}

// spanTree converts a snapshot subtree to its JSON form.
func spanTree(s *snapshot, baseNs, nowNs int64) *spanJSON {
	end := s.endNs
	open := end == 0
	if open {
		end = nowNs
	}
	out := &spanJSON{
		SpanID:     s.id,
		Name:       s.name,
		StartUs:    (s.startNs - baseNs) / 1e3,
		DurationUs: (end - s.startNs) / 1e3,
		Open:       open,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, k := range s.children {
		out.Children = append(out.Children, spanTree(k, baseNs, nowNs))
	}
	return out
}

// Exemplar links one latency-histogram bucket to the trace that most
// recently landed in it, so a histogram tail is one click from its
// span tree. Bucket is the upper bound label ("0.1", "+Inf").
type Exemplar struct {
	Bucket  string  `json:"bucket"`
	TraceID string  `json:"trace_id"`
	ValueMS float64 `json:"value_ms"`
	UnixMS  int64   `json:"unix_ms"`
}

// Handler serves the registry as a live request inspector:
//
//	GET ?                      — HTML trace list (plus status block)
//	GET ?format=json           — JSON trace list
//	GET ?id=<trace-id>         — HTML span tree for one trace
//	GET ?id=<id>&format=json   — JSON span tree
//	GET ?id=<id>&format=perfetto — Chrome trace-event JSON
//
// status (optional) contributes a process-status object to the list
// views; mapserve passes the same source /healthz serves. exemplars
// (optional) contributes the histogram-bucket exemplar table, each row
// linking to its trace when the registry still retains it.
func Handler(r *Registry, status func() any, exemplars func() []Exemplar) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := req.URL.Query().Get("id")
		format := req.URL.Query().Get("format")
		if id == "" {
			serveList(w, r, status, exemplars, format)
			return
		}
		tr := r.Lookup(id)
		if tr == nil {
			http.Error(w, "trace not found (evicted or unknown id)", http.StatusNotFound)
			return
		}
		switch format {
		case "perfetto":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%q", "trace-"+tr.id+".json"))
			if err := WritePerfetto(w, tr); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "json":
			w.Header().Set("Content-Type", "application/json")
			nowNs := tr.tracer.now().UnixNano()
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(map[string]any{
				"trace_id": tr.id,
				"name":     tr.name,
				"start":    tr.start,
				"root":     spanTree(tr.root.snap(), tr.start.UnixNano(), nowNs),
			})
		default:
			serveDetail(w, tr)
		}
	})
}

// serveList renders the trace list (HTML or JSON).
func serveList(w http.ResponseWriter, r *Registry, status func() any, exemplars func() []Exemplar, format string) {
	traces := r.Traces()
	var exs []Exemplar
	if exemplars != nil {
		exs = exemplars()
	}
	if format == "json" {
		infos := make([]traceInfo, len(traces))
		for i, tr := range traces {
			infos[i] = traceInfo{
				TraceID:    tr.id,
				Name:       tr.name,
				Start:      tr.start,
				DurationMs: float64(tr.Duration().Microseconds()) / 1e3,
				Spans:      tr.SpanCount(),
				Dropped:    tr.Dropped(),
			}
		}
		body := map[string]any{"traces": infos, "total": r.Total()}
		if status != nil {
			body["status"] = status()
		}
		if len(exs) > 0 {
			body["exemplars"] = exs
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(body)
		return
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>/debug/requests</title>")
	b.WriteString("<style>body{font-family:monospace;margin:1.5em}table{border-collapse:collapse}" +
		"td,th{border:1px solid #bbb;padding:2px 8px;text-align:left}th{background:#eee}" +
		"pre{background:#f6f6f6;padding:8px}</style></head><body>")
	b.WriteString("<h1>mapserve request traces</h1>")
	if status != nil {
		js, err := json.MarshalIndent(status(), "", " ")
		if err == nil {
			b.WriteString("<h2>status</h2><pre>" + html.EscapeString(string(js)) + "</pre>")
		}
	}
	if len(exs) > 0 {
		b.WriteString("<h2>latency exemplars</h2>" +
			"<table><tr><th>bucket ≤</th><th>latency</th><th>trace</th><th>when</th></tr>")
		for _, ex := range exs {
			link := html.EscapeString(ex.TraceID)
			if r.Lookup(ex.TraceID) != nil {
				link = fmt.Sprintf("<a href=\"?id=%s\">%s</a>", ex.TraceID, ex.TraceID)
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%.3fms</td><td>%s</td><td>%s</td></tr>",
				html.EscapeString(ex.Bucket), ex.ValueMS, link,
				time.UnixMilli(ex.UnixMS).UTC().Format(time.RFC3339Nano))
		}
		b.WriteString("</table>")
	}
	fmt.Fprintf(&b, "<h2>last %d of %d traces</h2>", len(traces), r.Total())
	b.WriteString("<table><tr><th>trace</th><th>endpoint</th><th>start</th>" +
		"<th>duration</th><th>spans</th><th>dropped</th><th>export</th></tr>")
	for _, tr := range traces {
		fmt.Fprintf(&b,
			"<tr><td><a href=\"?id=%s\">%s</a></td><td>%s</td><td>%s</td>"+
				"<td>%s</td><td>%d</td><td>%d</td>"+
				"<td><a href=\"?id=%s&amp;format=perfetto\">perfetto</a></td></tr>",
			tr.id, tr.id, html.EscapeString(tr.name),
			tr.start.Format(time.RFC3339Nano), tr.Duration(),
			tr.SpanCount(), tr.Dropped(), tr.id)
	}
	b.WriteString("</table></body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(b.String()))
}

// serveDetail renders one trace's span tree as HTML.
func serveDetail(w http.ResponseWriter, tr *Trace) {
	nowNs := tr.tracer.now().UnixNano()
	root := tr.root.snap()
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>trace " + tr.id + "</title>")
	b.WriteString("<style>body{font-family:monospace;margin:1.5em}" +
		"ul{list-style:none;border-left:1px dotted #999;margin-left:8px;padding-left:16px}" +
		".d{color:#06c}.a{color:#777}</style></head><body>")
	fmt.Fprintf(&b, "<h1>trace %s</h1><p>%s · started %s · %d spans (%d dropped) · "+
		"<a href=\"?id=%s&amp;format=json\">json</a> · "+
		"<a href=\"?id=%s&amp;format=perfetto\">perfetto</a> · <a href=\"?\">back</a></p>",
		tr.id, html.EscapeString(tr.name), tr.start.Format(time.RFC3339Nano),
		tr.SpanCount(), tr.Dropped(), tr.id, tr.id)
	var walk func(s *snapshot)
	walk = func(s *snapshot) {
		end := s.endNs
		openMark := ""
		if end == 0 {
			end = nowNs
			openMark = " (open)"
		}
		fmt.Fprintf(&b, "<li><b>%s</b> <span class=\"d\">%s%s</span>",
			html.EscapeString(s.name), time.Duration(end-s.startNs), openMark)
		if len(s.attrs) > 0 {
			parts := make([]string, len(s.attrs))
			for i, a := range s.attrs {
				parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value())
			}
			sort.Strings(parts)
			b.WriteString(" <span class=\"a\">" + html.EscapeString(strings.Join(parts, " ")) + "</span>")
		}
		if len(s.children) > 0 {
			b.WriteString("<ul>")
			for _, k := range s.children {
				walk(k)
			}
			b.WriteString("</ul>")
		}
		b.WriteString("</li>")
	}
	b.WriteString("<ul>")
	walk(root)
	b.WriteString("</ul></body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(b.String()))
}
