package trace

// DirSink exports completed traces to a directory as Perfetto JSON,
// keeping only the N slowest traces per category (category = root span
// name = service endpoint). This is the post-mortem complement to the
// live Registry: after a load run, the directory holds exactly the
// requests worth opening in the Perfetto UI.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// dirEntry records one exported file for retention bookkeeping. seq is
// a monotone write counter, so the globally-oldest file is the one
// with the minimum seq.
type dirEntry struct {
	path string
	dur  time.Duration
	seq  int64
}

// DirSink keeps the slowest-N traces per category on disk, optionally
// bounded by a total file cap across all categories.
type DirSink struct {
	dir      string
	keep     int
	maxFiles int

	mu    sync.Mutex
	seq   int64
	files int
	cats  map[string][]dirEntry
}

// NewDirSink builds a sink writing under dir (created if missing),
// retaining keep traces per category (keep ≤ 0 selects 8) with no
// total cap.
func NewDirSink(dir string, keep int) (*DirSink, error) {
	return NewDirSinkLimited(dir, keep, 0)
}

// NewDirSinkLimited is NewDirSink with a total retention cap: at most
// maxFiles files across every category, evicting the oldest-written
// file first (maxFiles ≤ 0 means unlimited). The per-category slowest
// keep still applies; the cap bounds long soaks whose endpoint mix
// keeps minting new categories.
func NewDirSinkLimited(dir string, keep, maxFiles int) (*DirSink, error) {
	if keep <= 0 {
		keep = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirSink{dir: dir, keep: keep, maxFiles: maxFiles, cats: make(map[string][]dirEntry)}, nil
}

// Add exports tr if it ranks among the slowest keep traces of its
// category, evicting the fastest retained file when over budget. It has
// the sink signature for Tracer.AddSink; export errors are swallowed —
// tracing must never fail a request.
func (d *DirSink) Add(tr *Trace) {
	if d == nil || tr == nil {
		return
	}
	cat := sanitizeCategory(tr.Name())
	dur := tr.Duration()

	d.mu.Lock()
	defer d.mu.Unlock()
	entries := d.cats[cat]
	if len(entries) >= d.keep {
		// Full: find the fastest retained trace; bail if tr is no slower.
		fastest := 0
		for i := 1; i < len(entries); i++ {
			if entries[i].dur < entries[fastest].dur {
				fastest = i
			}
		}
		if dur <= entries[fastest].dur {
			return
		}
		os.Remove(entries[fastest].path)
		entries = append(entries[:fastest], entries[fastest+1:]...)
		d.files--
	}

	path := filepath.Join(d.dir, fmt.Sprintf("%s-%s.json", cat, tr.ID()))
	f, err := os.Create(path)
	if err != nil {
		d.cats[cat] = entries
		return
	}
	err = WritePerfetto(f, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		d.cats[cat] = entries
		return
	}
	d.seq++
	d.cats[cat] = append(entries, dirEntry{path: path, dur: dur, seq: d.seq})
	d.files++
	for d.maxFiles > 0 && d.files > d.maxFiles {
		d.evictOldestLocked()
	}
}

// evictOldestLocked removes the file with the lowest write seq across
// all categories. The entry just written has the highest seq, so a new
// trace is never its own eviction victim.
func (d *DirSink) evictOldestLocked() {
	oldCat, oldIdx := "", -1
	var oldSeq int64
	for cat, entries := range d.cats {
		for i, e := range entries {
			if oldIdx == -1 || e.seq < oldSeq {
				oldCat, oldIdx, oldSeq = cat, i, e.seq
			}
		}
	}
	if oldIdx == -1 {
		return
	}
	entries := d.cats[oldCat]
	os.Remove(entries[oldIdx].path)
	entries = append(entries[:oldIdx], entries[oldIdx+1:]...)
	if len(entries) == 0 {
		delete(d.cats, oldCat)
	} else {
		d.cats[oldCat] = entries
	}
	d.files--
}

// sanitizeCategory makes a root-span name safe as a filename prefix.
func sanitizeCategory(name string) string {
	if name == "" {
		return "trace"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
