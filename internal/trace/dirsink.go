package trace

// DirSink exports completed traces to a directory as Perfetto JSON,
// keeping only the N slowest traces per category (category = root span
// name = service endpoint). This is the post-mortem complement to the
// live Registry: after a load run, the directory holds exactly the
// requests worth opening in the Perfetto UI.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// dirEntry records one exported file for retention bookkeeping.
type dirEntry struct {
	path string
	dur  time.Duration
}

// DirSink keeps the slowest-N traces per category on disk.
type DirSink struct {
	dir  string
	keep int

	mu   sync.Mutex
	cats map[string][]dirEntry
}

// NewDirSink builds a sink writing under dir (created if missing),
// retaining keep traces per category (keep ≤ 0 selects 8).
func NewDirSink(dir string, keep int) (*DirSink, error) {
	if keep <= 0 {
		keep = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirSink{dir: dir, keep: keep, cats: make(map[string][]dirEntry)}, nil
}

// Add exports tr if it ranks among the slowest keep traces of its
// category, evicting the fastest retained file when over budget. It has
// the sink signature for Tracer.AddSink; export errors are swallowed —
// tracing must never fail a request.
func (d *DirSink) Add(tr *Trace) {
	if d == nil || tr == nil {
		return
	}
	cat := sanitizeCategory(tr.Name())
	dur := tr.Duration()

	d.mu.Lock()
	defer d.mu.Unlock()
	entries := d.cats[cat]
	if len(entries) >= d.keep {
		// Full: find the fastest retained trace; bail if tr is no slower.
		fastest := 0
		for i := 1; i < len(entries); i++ {
			if entries[i].dur < entries[fastest].dur {
				fastest = i
			}
		}
		if dur <= entries[fastest].dur {
			return
		}
		os.Remove(entries[fastest].path)
		entries = append(entries[:fastest], entries[fastest+1:]...)
	}

	path := filepath.Join(d.dir, fmt.Sprintf("%s-%s.json", cat, tr.ID()))
	f, err := os.Create(path)
	if err != nil {
		d.cats[cat] = entries
		return
	}
	err = WritePerfetto(f, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		d.cats[cat] = entries
		return
	}
	d.cats[cat] = append(entries, dirEntry{path: path, dur: dur})
}

// sanitizeCategory makes a root-span name safe as a filename prefix.
func sanitizeCategory(name string) string {
	if name == "" {
		return "trace"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
