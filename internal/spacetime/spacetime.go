// Package spacetime renders the paper's figures as deterministic text:
// Figure 1 (feasible versus non-feasible conflict vectors in a 2-D
// index set), Figure 2 (the block diagram of a linear array design) and
// Figure 3 (the space-time execution diagram of a mapped algorithm).
// The experiment driver writes these artifacts so a reader can compare
// them with the paper side by side.
package spacetime

import (
	"fmt"
	"sort"
	"strings"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// RenderIndexSet2D draws a 2-dimensional constant-bounded index set
// with one conflict vector anchored at the origin, marking the lattice
// points it passes through — the content of Figure 1. Rows are printed
// with j2 decreasing so the origin sits at the bottom-left.
func RenderIndexSet2D(set uda.IndexSet, gamma intmat.Vector) (string, error) {
	if set.Dim() != 2 || len(gamma) != 2 {
		return "", fmt.Errorf("spacetime: RenderIndexSet2D needs dimension 2, got set %d / γ %d", set.Dim(), len(gamma))
	}
	feasible := conflict.Feasible(set, gamma)
	onRay := func(x, y int64) bool {
		// (x,y) = t·γ for a positive integer t.
		gx, gy := gamma[0], gamma[1]
		if gx == 0 && gy == 0 {
			return false
		}
		if gx != 0 {
			if x%gx != 0 || x/gx <= 0 {
				return false
			}
			t := x / gx
			return t*gy == y
		}
		if x != 0 {
			return false
		}
		return y%gy == 0 && y/gy > 0
	}
	var b strings.Builder
	status := "FEASIBLE (leaves the index set from every anchor)"
	if !feasible {
		status = "NON-FEASIBLE (connects index points inside the set)"
	}
	fmt.Fprintf(&b, "index set 0<=j1<=%d, 0<=j2<=%d; conflict vector γ = %v — %s\n",
		set.Upper[0], set.Upper[1], gamma, status)
	for y := set.Upper[1]; y >= 0; y-- {
		fmt.Fprintf(&b, "j2=%d |", y)
		for x := int64(0); x <= set.Upper[0]; x++ {
			switch {
			case x == 0 && y == 0:
				b.WriteString(" O") // anchor
			case onRay(x, y):
				b.WriteString(" *") // hit by a multiple of γ
			default:
				b.WriteString(" .")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("      ")
	for x := int64(0); x <= set.Upper[0]; x++ {
		b.WriteString("--")
	}
	b.WriteString("\n       j1 ->\n")
	return b.String(), nil
}

// RenderLinearArray draws the block diagram of a 1-dimensional array
// design — the content of Figure 2: the PE range, and one line per
// dependence stream giving its travel direction, hop count and buffer
// count.
func RenderLinearArray(m *schedule.Mapping, dec *array.Decomposition, streamNames []string) (string, error) {
	if m.S.Rows() != 1 {
		return "", fmt.Errorf("spacetime: RenderLinearArray needs a 1-D space mapping, S has %d rows", m.S.Rows())
	}
	lo, hi := peRange(m)
	var b strings.Builder
	fmt.Fprintf(&b, "linear array for %s: S = %v, Π = %v\n", m.Algo.Name, m.S.Row(0), m.Pi)
	fmt.Fprintf(&b, "processors %d..%d:  ", lo, hi)
	for p := lo; p <= hi; p++ {
		fmt.Fprintf(&b, "[PE%+d]", p)
		if p != hi {
			b.WriteString("--")
		}
	}
	b.WriteString("\n")
	sd := m.S.Mul(m.Algo.D)
	for i := 0; i < m.Algo.NumDeps(); i++ {
		name := fmt.Sprintf("d%d", i+1)
		if streamNames != nil && i < len(streamNames) && streamNames[i] != "" {
			name = streamNames[i]
		}
		dir := "stays resident"
		if v := sd.At(0, i); v > 0 {
			dir = fmt.Sprintf("travels left→right (%+d/use)", v)
		} else if v < 0 {
			dir = fmt.Sprintf("travels right→left (%+d/use)", v)
		}
		buffers := int64(0)
		if dec != nil {
			buffers = dec.Buffers[i]
		}
		fmt.Fprintf(&b, "  link %-12s %-28s buffers: %d\n", name+":", dir, buffers)
	}
	if dec != nil {
		fmt.Fprintf(&b, "total buffers: %d, single-hop (collision-free by construction): %v\n",
			dec.TotalBuffers(), dec.SingleHop())
	}
	return b.String(), nil
}

// RenderSpaceTime draws the space-time execution table of a mapping
// with a 1-dimensional space part — the content of Figure 3. Rows are
// processors, columns time steps, and each cell holds the index point
// computed there ("..." marks idle slots; a cell with more than one
// point is a computational conflict and is flagged with '!').
func RenderSpaceTime(m *schedule.Mapping) (string, error) {
	if m.S.Rows() != 1 {
		return "", fmt.Errorf("spacetime: RenderSpaceTime needs a 1-D space mapping, S has %d rows", m.S.Rows())
	}
	type cellKey struct {
		pe, t int64
	}
	cells := make(map[cellKey][]intmat.Vector)
	minT, maxT := int64(1)<<62, int64(-1)<<62
	m.Algo.Set.Each(func(j intmat.Vector) bool {
		pe := m.Processor(j)[0]
		t := m.Time(j)
		cells[cellKey{pe, t}] = append(cells[cellKey{pe, t}], j)
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
		return true
	})
	lo, hi := peRange(m)
	cellText := func(pts []intmat.Vector) string {
		if len(pts) == 0 {
			return "..."
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].String() < pts[b].String() })
		parts := make([]string, len(pts))
		for i, p := range pts {
			s := make([]string, len(p))
			for q, x := range p {
				s[q] = fmt.Sprint(x)
			}
			parts[i] = strings.Join(s, "")
		}
		out := strings.Join(parts, "!")
		if len(pts) > 1 {
			out = "!" + out
		}
		return out
	}
	width := 0
	for _, pts := range cells {
		if w := len(cellText(pts)); w > width {
			width = w
		}
	}
	if width < 3 {
		width = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "space-time diagram for %s: T = [S; Π], S = %v, Π = %v\n", m.Algo.Name, m.S.Row(0), m.Pi)
	fmt.Fprintf(&b, "cell = index point j1j2…jn computed at that (PE, t); '!' marks conflicts\n")
	fmt.Fprintf(&b, "%8s", "PE\\t")
	for t := minT; t <= maxT; t++ {
		fmt.Fprintf(&b, " %*d", width, t)
	}
	b.WriteString("\n")
	for p := lo; p <= hi; p++ {
		fmt.Fprintf(&b, "%8d", p)
		for t := minT; t <= maxT; t++ {
			fmt.Fprintf(&b, " %*s", width, cellText(cells[cellKey{p, t}]))
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

func peRange(m *schedule.Mapping) (lo, hi int64) {
	row := m.S.Row(0)
	for i, c := range row {
		if c > 0 {
			hi += c * m.Algo.Set.Upper[i]
		} else {
			lo += c * m.Algo.Set.Upper[i]
		}
	}
	return lo, hi
}

// RenderGrid2D renders occupancy frames of a 2-dimensional array: one
// small grid per requested time step, each cell showing how many
// computations execute on that PE at that step ('.' idle, '#' one,
// a digit for conflicts). A nil times slice selects the first, middle
// and last steps of the schedule.
func RenderGrid2D(m *schedule.Mapping, times []int64) (string, error) {
	if m.S.Rows() != 2 {
		return "", fmt.Errorf("spacetime: RenderGrid2D needs a 2-D space mapping, S has %d rows", m.S.Rows())
	}
	type cell struct{ x, y, t int64 }
	counts := make(map[cell]int)
	minX, maxX := int64(1)<<62, int64(-1)<<62
	minY, maxY := int64(1)<<62, int64(-1)<<62
	minT, maxT := int64(1)<<62, int64(-1)<<62
	m.Algo.Set.Each(func(j intmat.Vector) bool {
		pe := m.Processor(j)
		t := m.Time(j)
		counts[cell{pe[0], pe[1], t}]++
		minX, maxX = min64(minX, pe[0]), max64(maxX, pe[0])
		minY, maxY = min64(minY, pe[1]), max64(maxY, pe[1])
		minT, maxT = min64(minT, t), max64(maxT, t)
		return true
	})
	if times == nil {
		times = []int64{minT, (minT + maxT) / 2, maxT}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "2-D array occupancy for %s: S rows %v / %v, Π = %v; PEs x∈[%d,%d], y∈[%d,%d]\n",
		m.Algo.Name, m.S.Row(0), m.S.Row(1), m.Pi, minX, maxX, minY, maxY)
	for _, t := range times {
		fmt.Fprintf(&b, "t = %d:\n", t)
		for y := maxY; y >= minY; y-- {
			b.WriteString("  ")
			for x := minX; x <= maxX; x++ {
				switch c := counts[cell{x, y, t}]; {
				case c == 0:
					b.WriteString(". ")
				case c == 1:
					b.WriteString("# ")
				case c < 10:
					fmt.Fprintf(&b, "%d ", c)
				default:
					b.WriteString("* ")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RenderSpaceTimeCSV emits the same table as RenderSpaceTime in CSV
// form (pe,time,point) for machine comparison.
func RenderSpaceTimeCSV(m *schedule.Mapping) (string, error) {
	if m.S.Rows() != 1 {
		return "", fmt.Errorf("spacetime: RenderSpaceTimeCSV needs a 1-D space mapping, S has %d rows", m.S.Rows())
	}
	type row struct {
		pe, t int64
		point string
	}
	var rows []row
	m.Algo.Set.Each(func(j intmat.Vector) bool {
		rows = append(rows, row{m.Processor(j)[0], m.Time(j), j.String()})
		return true
	})
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].t != rows[b].t {
			return rows[a].t < rows[b].t
		}
		if rows[a].pe != rows[b].pe {
			return rows[a].pe < rows[b].pe
		}
		return rows[a].point < rows[b].point
	})
	var b strings.Builder
	b.WriteString("pe,time,point\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%q\n", r.pe, r.t, r.point)
	}
	return b.String(), nil
}
