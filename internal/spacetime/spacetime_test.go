package spacetime

import (
	"strings"
	"testing"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

func figure3Mapping(t *testing.T) *schedule.Mapping {
	t.Helper()
	m, err := schedule.NewMapping(uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRenderIndexSet2DFigure1(t *testing.T) {
	set := uda.Box(4, 4)
	nf, err := RenderIndexSet2D(set, intmat.Vec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nf, "NON-FEASIBLE") {
		t.Errorf("γ=[1 1] not marked non-feasible:\n%s", nf)
	}
	// The ray of [1,1] hits (1,1), ..., (4,4): four stars.
	if got := strings.Count(nf, "*"); got != 4 {
		t.Errorf("star count = %d, want 4:\n%s", got, nf)
	}
	f, err := RenderIndexSet2D(set, intmat.Vec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f, "FEASIBLE") || strings.Contains(f, "NON-FEASIBLE") {
		t.Errorf("γ=[3 5] not marked feasible:\n%s", f)
	}
	// [3,5] leaves the box immediately: zero stars.
	if got := strings.Count(f, "*"); got != 0 {
		t.Errorf("star count = %d, want 0:\n%s", got, f)
	}
}

func TestRenderIndexSet2DShapeError(t *testing.T) {
	if _, err := RenderIndexSet2D(uda.Cube(3, 2), intmat.Vec(1, 1, 1)); err == nil {
		t.Error("3-D set accepted")
	}
	if _, err := RenderIndexSet2D(uda.Box(2, 2), intmat.Vec(1)); err == nil {
		t.Error("short γ accepted")
	}
}

func TestRenderLinearArrayFigure2(t *testing.T) {
	m := figure3Mapping(t)
	dec, err := array.NearestNeighbor(1).Decompose(m.S, m.Algo.D, m.Pi)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderLinearArray(m, dec, []string{"B", "A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"link B:", "link A:", "link C:", "buffers: 3", "total buffers: 3", "right→left"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// 13 PEs from -4 to +8.
	if !strings.Contains(out, "processors -4..8") {
		t.Errorf("PE range missing:\n%s", out)
	}
}

func TestRenderLinearArrayNeeds1D(t *testing.T) {
	m, err := schedule.NewMapping(uda.MatMul(3),
		intmat.FromRows([]int64{1, 0, 0}, []int64{0, 1, 0}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RenderLinearArray(m, nil, nil); err == nil {
		t.Error("2-D space mapping accepted")
	}
}

func TestRenderSpaceTimeFigure3(t *testing.T) {
	m := figure3Mapping(t)
	out, err := RenderSpaceTime(m)
	if err != nil {
		t.Fatal(err)
	}
	// No conflicts for the optimal schedule.
	if strings.Contains(out, "!") && strings.Contains(strings.SplitN(out, "\n", 3)[2], "!") {
		t.Errorf("conflict marker in conflict-free diagram:\n%s", out)
	}
	// Computation (0,0,0) executes at PE 0, t = 0; (4,4,4) at PE 4, t = 24.
	if !strings.Contains(out, "000") || !strings.Contains(out, "444") {
		t.Errorf("missing corner computations:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header (2 lines) + PE\t line + 13 PE rows.
	if len(lines) != 3+13 {
		t.Errorf("line count = %d, want 16:\n%s", len(lines), out)
	}
}

func TestRenderSpaceTimeShowsConflicts(t *testing.T) {
	m, err := schedule.NewMapping(uda.MatMul(2), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderSpaceTime(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "!") {
		t.Errorf("no conflict markers for conflicting mapping:\n%s", out)
	}
}

func TestRenderSpaceTimeCSV(t *testing.T) {
	m := figure3Mapping(t)
	out, err := RenderSpaceTimeCSV(m)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "pe,time,point" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+125 {
		t.Errorf("row count = %d, want 126 (header + 5³ points)", len(lines))
	}
	// Sorted by time: first data row is the origin at t=0.
	if !strings.Contains(lines[1], `"[0 0 0]"`) {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestRenderGrid2D(t *testing.T) {
	m, err := schedule.NewMapping(uda.MatMul(3),
		intmat.FromRows([]int64{1, 0, 0}, []int64{0, 1, 0}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderGrid2D(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three frames by default.
	if got := strings.Count(out, "t = "); got != 3 {
		t.Errorf("frames = %d, want 3:\n%s", got, out)
	}
	// k = n projection is conflict-free: no digit cells.
	for _, d := range []string{"2 ", "3 ", "4 "} {
		if strings.Contains(out, d) {
			t.Errorf("conflict marker %q in conflict-free grid:\n%s", d, out)
		}
	}
	// Explicit frames.
	out2, err := RenderGrid2D(m, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	// At t = 0 only the origin runs.
	if got := strings.Count(out2, "#"); got != 1 {
		t.Errorf("t=0 occupancy = %d cells, want 1:\n%s", got, out2)
	}
}

func TestRenderGrid2DShowsConflicts(t *testing.T) {
	// Collapse j3 onto time with a conflicting schedule: S = rows e1,e2
	// with Π = [0,0,1] is invalid (ΠD); use a mapping with genuine
	// conflicts: S = [e1, e1] is rank deficient; instead use matmul on
	// a 1-point-thick... simplest: bit of a conflicting 2-D mapping:
	// S = (e1, e2) over a 4-D cube with Π summing the rest ambiguously.
	algo := uda.BitLevelConvolution(2, 2, 2)
	s := intmat.FromRows(
		[]int64{1, 0, 0, 0},
		[]int64{0, 1, 0, 0},
	)
	m, err := schedule.NewMapping(algo, s, intmat.Vec(1, 1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	chk, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	if chk.ConflictFree {
		t.Skip("chosen mapping unexpectedly conflict-free")
	}
	out, err := RenderGrid2D(m, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.ContainsAny(out, "23456789*") {
		t.Errorf("no conflict markers in conflicting grid:\n%s", out)
	}
}

func TestRenderGrid2DShapeError(t *testing.T) {
	m := figure3Mapping(t)
	if _, err := RenderGrid2D(m, nil); err == nil {
		t.Error("1-D space mapping accepted")
	}
}

func TestRenderSpaceTimeCSVShapeError(t *testing.T) {
	m, err := schedule.NewMapping(uda.MatMul(3),
		intmat.FromRows([]int64{1, 0, 0}, []int64{0, 1, 0}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RenderSpaceTimeCSV(m); err == nil {
		t.Error("2-D space mapping accepted")
	}
	if _, err := RenderSpaceTime(m); err == nil {
		t.Error("2-D space mapping accepted by RenderSpaceTime")
	}
}
