package spacetime

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare checks the rendered artifact against its stored golden
// file; `go test -update` rewrites the files after an intentional
// format change.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -update ./internal/spacetime/`): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFigure1(t *testing.T) {
	set := uda.Box(4, 4)
	nf, err := RenderIndexSet2D(set, intmat.Vec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "figure1_nonfeasible.txt", nf)
	fe, err := RenderIndexSet2D(set, intmat.Vec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "figure1_feasible.txt", fe)
}

func TestGoldenFigure2(t *testing.T) {
	m := figure3Mapping(t)
	dec, err := array.NearestNeighbor(1).Decompose(m.S, m.Algo.D, m.Pi)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderLinearArray(m, dec, []string{"B", "A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "figure2_array.txt", out)
}

func TestGoldenFigure3(t *testing.T) {
	m := figure3Mapping(t)
	out, err := RenderSpaceTime(m)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "figure3_spacetime.txt", out)
}

func TestGoldenFigure3CSV(t *testing.T) {
	m := figure3Mapping(t)
	out, err := RenderSpaceTimeCSV(m)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "figure3_spacetime.csv", out)
}
