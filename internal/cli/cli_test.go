package cli

import (
	"testing"

	"lodim/internal/intmat"
)

func TestParseVector(t *testing.T) {
	v, err := ParseVector("1, -2,3")
	if err != nil || !v.Equal(intmat.Vec(1, -2, 3)) {
		t.Errorf("got %v, %v", v, err)
	}
	if _, err := ParseVector(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseVector("1,x"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseMatrix(t *testing.T) {
	m, err := ParseMatrix("1,1,-1;0,1,0")
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.At(0, 2) != -1 {
		t.Errorf("m = %v", m)
	}
	e, err := ParseMatrix("empty:3")
	if err != nil || e.Rows() != 0 || e.Cols() != 3 {
		t.Errorf("empty: %v, %v", e, err)
	}
	if _, err := ParseMatrix("empty:x"); err == nil {
		t.Error("bad empty spec accepted")
	}
	if _, err := ParseMatrix("1,2;3"); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestAlgorithmLookup(t *testing.T) {
	cases := map[string]int{
		"matmul": 3, "tc": 3, "transitive-closure": 3,
		"conv": 2, "convolution": 2, "lu": 3, "sor": 2,
		"bitconv": 4, "bit-convolution": 4, "bitmm": 5, "bit-matmul": 5,
		"matvec": 2, "edit": 2, "edit-distance": 2,
		"jacobi": 3, "jacobi2d": 3, "corr": 2, "correlation": 2,
	}
	for name, dim := range cases {
		a, err := Algorithm(name, nil)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Dim() != dim {
			t.Errorf("%s: dim %d, want %d", name, a.Dim(), dim)
		}
	}
	if _, err := Algorithm("nope", nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Explicit sizes.
	a, err := Algorithm("matmul", []int64{7})
	if err != nil || a.Set.Upper[0] != 7 {
		t.Errorf("sized matmul: %v, %v", a, err)
	}
}

func TestMachineSpec(t *testing.T) {
	if m, err := Machine("none"); err != nil || m != nil {
		t.Errorf("none: %v, %v", m, err)
	}
	if m, err := Machine(""); err != nil || m != nil {
		t.Errorf("empty: %v, %v", m, err)
	}
	m, err := Machine("mesh2")
	if err != nil || m.Dim() != 2 {
		t.Errorf("mesh2: %v", err)
	}
	p, err := Machine("p:1;-1")
	if err != nil || p.Dim() != 1 || p.P.Cols() != 2 {
		t.Errorf("p:1;-1: %v", err)
	}
	if _, err := Machine("meshX"); err == nil {
		t.Error("meshX accepted")
	}
	if _, err := Machine("bogus"); err == nil {
		t.Error("bogus accepted")
	}
}

func TestParseSizes(t *testing.T) {
	s, err := ParseSizes("4,3")
	if err != nil || len(s) != 2 || s[1] != 3 {
		t.Errorf("sizes: %v, %v", s, err)
	}
	s2, err := ParseSizes("")
	if err != nil || s2 != nil {
		t.Errorf("empty sizes: %v, %v", s2, err)
	}
}
