// Package cli holds shared helpers for the command-line tools:
// parsing matrices, vectors and algorithm specifications from flags.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// ParseVector parses "1,2,-3" into a Vector.
func ParseVector(s string) (intmat.Vector, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cli: empty vector")
	}
	parts := strings.Split(s, ",")
	v := make(intmat.Vector, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: bad vector entry %q: %v", p, err)
		}
		v[i] = x
	}
	return v, nil
}

// ParseMatrix parses "1,1,-1;0,1,0" (semicolon-separated rows) into a
// Matrix. The special value "empty:N" denotes the 0×N matrix (a space
// mapping onto a single processor).
func ParseMatrix(s string) (*intmat.Matrix, error) {
	s = strings.TrimSpace(s)
	if cols, ok := strings.CutPrefix(s, "empty:"); ok {
		n, err := strconv.Atoi(cols)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cli: bad empty matrix spec %q", s)
		}
		return intmat.New(0, n), nil
	}
	rowSpecs := strings.Split(s, ";")
	rows := make([][]int64, len(rowSpecs))
	for i, rs := range rowSpecs {
		v, err := ParseVector(rs)
		if err != nil {
			return nil, err
		}
		if i > 0 && len(v) != len(rows[0]) {
			return nil, fmt.Errorf("cli: ragged matrix: row %d has %d entries, row 1 has %d", i+1, len(v), len(rows[0]))
		}
		rows[i] = v
	}
	return intmat.FromRows(rows...), nil
}

// Algorithm instantiates a named library algorithm at the given sizes.
// Sizes beyond what the constructor needs are ignored; missing sizes
// default to 4 (and 3 for bit widths).
func Algorithm(name string, sizes []int64) (*uda.Algorithm, error) {
	get := func(i int, def int64) int64 {
		if i < len(sizes) && sizes[i] > 0 {
			return sizes[i]
		}
		return def
	}
	switch name {
	case "matmul":
		return uda.MatMul(get(0, 4)), nil
	case "transitive-closure", "tc":
		return uda.TransitiveClosure(get(0, 4)), nil
	case "convolution", "conv":
		return uda.Convolution(get(0, 6), get(1, 3)), nil
	case "lu":
		return uda.LU(get(0, 4)), nil
	case "sor":
		return uda.SOR(get(0, 5), get(1, 5)), nil
	case "bit-convolution", "bitconv":
		return uda.BitLevelConvolution(get(0, 4), get(1, 3), get(2, 3)), nil
	case "bit-matmul", "bitmm":
		return uda.BitLevelMatMul(get(0, 3), get(1, 3)), nil
	case "matvec":
		return uda.MatVec(get(0, 4), get(1, 4)), nil
	case "edit-distance", "edit":
		return uda.EditDistance(get(0, 5), get(1, 5)), nil
	case "jacobi2d", "jacobi":
		return uda.Jacobi2D(get(0, 4), get(1, 4), get(2, 4)), nil
	case "correlation", "corr":
		return uda.Correlation(get(0, 6), get(1, 3)), nil
	default:
		return nil, fmt.Errorf("cli: unknown algorithm %q (have: matmul, transitive-closure, convolution, lu, sor, bit-convolution, bit-matmul, matvec, edit-distance, jacobi2d, correlation)", name)
	}
}

// Machine parses a machine spec: "none", "mesh1", "mesh2", … or an
// explicit primitive list "p:1;-1" (columns semicolon-separated).
func Machine(spec string) (*array.Machine, error) {
	spec = strings.TrimSpace(spec)
	switch {
	case spec == "" || spec == "none":
		return nil, nil
	case strings.HasPrefix(spec, "mesh"):
		d, err := strconv.Atoi(spec[len("mesh"):])
		if err != nil || d < 1 {
			return nil, fmt.Errorf("cli: bad machine spec %q", spec)
		}
		return array.NearestNeighbor(d), nil
	case strings.HasPrefix(spec, "p:"):
		colSpecs := strings.Split(spec[2:], ";")
		cols := make([]intmat.Vector, len(colSpecs))
		for i, cs := range colSpecs {
			v, err := ParseVector(cs)
			if err != nil {
				return nil, err
			}
			cols[i] = v
		}
		return array.FromPrimitives(cols...), nil
	default:
		return nil, fmt.Errorf("cli: unknown machine spec %q (use none, meshN, or p:...)", spec)
	}
}

// ParseSizes parses "4" or "4,3,3" into a size list.
func ParseSizes(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	return ParseVector(s)
}
