# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test vet bench race race-hot fuzz cover experiments examples golden serve clean

all: build vet test

# The default pre-commit gate: build, vet, full tests, plus the race
# detector on the concurrent search packages (the full -race run is
# `make race`).
check: build vet test race-hot

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-hot:
	$(GO) test -race ./internal/schedule/... ./internal/conflict/... ./internal/service/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz campaigns on every fuzz target (seed corpora always run
# under plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzDecideVsBruteForce -fuzztime=30s ./internal/conflict/
	$(GO) test -fuzz=FuzzFactoredVsFull -fuzztime=30s ./internal/conflict/
	$(GO) test -fuzz=FuzzHNFInvariants -fuzztime=30s ./internal/intmat/
	$(GO) test -fuzz=FuzzRowNullBasis -fuzztime=30s ./internal/intmat/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/loopnest/

cover:
	$(GO) test -cover ./...

experiments:
	$(GO) run ./cmd/experiments -e all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/matmul
	$(GO) run ./examples/transitive
	$(GO) run ./examples/bitlevel
	$(GO) run ./examples/frontend

# Run the mapping-as-a-service HTTP server on :8080 (see README for
# the curl quickstart).
serve:
	$(GO) run ./cmd/mapserve -addr :8080

# Regenerate the figure golden files after an intentional format change.
golden:
	$(GO) test ./internal/spacetime/ -update

clean:
	$(GO) clean ./...
