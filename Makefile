# Convenience targets; everything is plain `go` underneath.

GO ?= go
BENCHTIME ?= 1x

.PHONY: all check build test vet fmtcheck bench bench-diff bench-guard race race-hot cluster-e2e loadgen corpus corpus-check fuzz cover experiments examples golden serve clean

all: build vet test

# The default pre-commit gate: build, vet, formatting, full tests, the
# race detector on the concurrent search packages (the full -race run
# is `make race`), and a stratified replay of the committed scenario
# corpus against today's engines.
check: build vet fmtcheck test race-hot corpus-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail when any tracked Go file is not gofmt-clean.
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-hot:
	$(GO) test -race ./internal/schedule/... ./internal/conflict/... ./internal/service/... ./internal/cluster/... ./internal/verify/... ./internal/trace/... ./internal/jobs/... ./internal/slo/...

# The multi-node federation tests: an in-process 3-node cluster under
# the race detector (distributed singleflight, peer cache-fill, peer
# death fallback, fill validation, hop-loop rejection).
cluster-e2e:
	$(GO) test -race -run 'TestClusterE2E' -v ./internal/service/
	$(GO) test -race -run 'TestRunInprocCluster' -v ./cmd/maploadgen/

# Reproducible cluster load test: replays a seeded permuted corpus
# against an in-process 3-node cluster and writes the JSON report
# (latency percentiles, cache-disposition ratios, SLO verdicts) to
# BENCH_pr7_cluster.json. Text summary goes to the terminal.
LOADGEN_OUT ?= BENCH_pr7_cluster.json
loadgen:
	$(GO) run ./cmd/maploadgen -inproc 3 -n 1200 -problems 48 -concurrency 16 -seed 1 \
		-slo-error-rate 0 -slo-hit-ratio 0.5 -json $(LOADGEN_OUT)

# Regenerate the committed scenario corpus (only needed when the
# generator or the families change; the manifest is deterministic for
# the seed, so an unchanged generator reproduces it byte for byte).
corpus:
	$(GO) run ./cmd/mapcorpus gen -n 10000 -seed 7 -out corpus/manifest.jsonl

# Differential regression oracle: replay a deterministic stratified
# sample of the committed corpus through the engines and the
# independent verifier; any divergence from the recorded outcomes
# fails the build.
corpus-check:
	$(GO) run ./cmd/mapcorpus check -manifest corpus/manifest.jsonl -sample 500 -seed 1

# Benchmarks, normalized to JSON comparable against BENCH_baseline.json
# (regenerate the baseline with `make bench BENCHTIME=2s > BENCH_baseline.json`
# on a quiet machine).
bench:
	@$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | $(GO) run ./internal/tools/benchjson

# Compare a captured benchmark report against the committed baseline,
# flagging any metric that worsened by more than 10%:
#   make bench > BENCH_new.json && make bench-diff NEW=BENCH_new.json
OLD ?= BENCH_baseline.json
NEW ?= BENCH_pr6.json
bench-diff:
	@$(GO) run ./internal/tools/benchjson -diff $(OLD) $(NEW)

# Observability overhead guard: rerun the reference engine benchmark
# and fail if ns/op worsened by more than 2% against the committed PR6
# capture (benchmarks present only on one side are reported, never
# counted). Run on a quiet machine; GUARD_BENCHTIME trades noise for
# wall time.
GUARD_BENCHTIME ?= 3s
bench-guard:
	@$(GO) test -run '^$$' -bench 'Engines/procedure/mu=8$$' -benchmem -benchtime=$(GUARD_BENCHTIME) . \
		| $(GO) run ./internal/tools/benchjson > BENCH_guard.json
	@$(GO) run ./internal/tools/benchjson -diff -threshold 0.02 -fail BENCH_pr6.json BENCH_guard.json

# Short fuzz campaigns on every fuzz target (seed corpora always run
# under plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzDecideVsBruteForce -fuzztime=30s ./internal/conflict/
	$(GO) test -fuzz=FuzzFactoredVsFull -fuzztime=30s ./internal/conflict/
	$(GO) test -fuzz=FuzzHNFInvariants -fuzztime=30s ./internal/intmat/
	$(GO) test -fuzz=FuzzRowNullBasis -fuzztime=30s ./internal/intmat/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/loopnest/
	$(GO) test -fuzz=FuzzVerifyVsBruteForce -fuzztime=30s ./internal/verify/
	$(GO) test -fuzz=FuzzClosedFormGamma -fuzztime=30s ./internal/verify/

cover:
	$(GO) test -cover ./...

experiments:
	$(GO) run ./cmd/experiments -e all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/matmul
	$(GO) run ./examples/transitive
	$(GO) run ./examples/bitlevel
	$(GO) run ./examples/frontend

# Run the mapping-as-a-service HTTP server on :8080 (see README for
# the curl quickstart).
serve:
	$(GO) run ./cmd/mapserve -addr :8080

# Regenerate the figure golden files after an intentional format change.
golden:
	$(GO) test ./internal/spacetime/ -update

clean:
	$(GO) clean ./...
