// Package lodim reproduces Shang & Fortes, "Time-Optimal and
// Conflict-Free Mappings of Uniform Dependence Algorithms into Lower
// Dimensional Processor Arrays" (ICPP 1990; Purdue TR-EE 90-29).
//
// Import lodim/mapping for the public API. See README.md for an
// overview, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-versus-measured record. The root package exists to host
// module documentation and the repository-level benchmark harness
// (bench_test.go), which regenerates each of the paper's evaluation
// artifacts as a testing.B benchmark.
package lodim
