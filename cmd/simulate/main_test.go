package main

import "testing"

func TestRunMatmulFigure3(t *testing.T) {
	if err := run("matmul", "4", "1,1,-1", "1,4,1", "mesh1", 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunTransitiveClosure(t *testing.T) {
	if err := run("transitive-closure", "4", "0,0,1", "5,1,1", "mesh1", 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunConvolutionVerified(t *testing.T) {
	if err := run("convolution", "6,3", "1,-1", "4,1", "none", 2, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunConflictingMappingStillRuns(t *testing.T) {
	// Π = [1,1,1] conflicts, but simulation must complete and report.
	if err := run("matmul", "3", "1,1,-1", "1,1,1", "none", 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunChecksumAlgorithms(t *testing.T) {
	if err := run("lu", "3", "1,1,-1", "1,2,2", "none", 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run("jacobi2d", "3,3,3", "0,1,0;0,0,1", "3,1,1", "mesh2", 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name                        string
		algo, sizes, s, pi, machine string
	}{
		{"bad algo", "nope", "", "1,1,-1", "1,4,1", "none"},
		{"bad sizes", "matmul", "q", "1,1,-1", "1,4,1", "none"},
		{"bad S", "matmul", "4", "x", "1,4,1", "none"},
		{"bad pi", "matmul", "4", "1,1,-1", "y", "none"},
		{"bad machine", "matmul", "4", "1,1,-1", "1,4,1", "zzz"},
		{"invalid schedule", "matmul", "4", "1,1,-1", "0,0,1", "none"},
		{"unrealizable", "matmul", "4", "2,2,-2", "1,1,1", "mesh1"},
	}
	for _, c := range cases {
		if err := run(c.algo, c.sizes, c.s, c.pi, c.machine, 1, false); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
