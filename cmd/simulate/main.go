// Command simulate executes a mapped uniform dependence algorithm on
// the cycle-accurate array simulator and prints the space-time diagram
// (Figure 3 of the paper), the array block diagram (Figure 2) and the
// run statistics. For matmul it pushes real matrix data through the
// array and verifies the product against a sequential reference.
//
// Usage:
//
//	simulate -algo matmul -mu 4 -s "1,1,-1" -pi "1,4,1" -machine mesh1
//	simulate -algo transitive-closure -mu 4 -s "0,0,1" -pi "5,1,1"
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lodim/internal/cli"
	"lodim/internal/schedule"
	"lodim/internal/spacetime"
	"lodim/internal/systolic"
)

// traceEvents is the -trace flag value, consulted by run.
var traceEvents int

func main() {
	var (
		algoName = flag.String("algo", "matmul", "algorithm name")
		sizes    = flag.String("mu", "", "problem sizes, comma separated")
		sSpec    = flag.String("s", "1,1,-1", "space mapping rows, ';' separated")
		piSpec   = flag.String("pi", "1,4,1", "schedule vector, comma separated")
		machine  = flag.String("machine", "mesh1", "machine: none, meshN, p:<cols>")
		seed     = flag.Int64("seed", 1, "seed for generated operand data")
		diagram  = flag.Bool("diagram", true, "print the space-time diagram (1-D space mappings only)")
		trace    = flag.Int("trace", 0, "print the first N simulation events (0 = off)")
	)
	flag.Parse()
	traceEvents = *trace
	if err := run(*algoName, *sizes, *sSpec, *piSpec, *machine, *seed, *diagram); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(algoName, sizes, sSpec, piSpec, machineSpec string, seed int64, diagram bool) error {
	szs, err := cli.ParseSizes(sizes)
	if err != nil {
		return err
	}
	algo, err := cli.Algorithm(algoName, szs)
	if err != nil {
		return err
	}
	s, err := cli.ParseMatrix(sSpec)
	if err != nil {
		return err
	}
	pi, err := cli.ParseVector(piSpec)
	if err != nil {
		return err
	}
	mach, err := cli.Machine(machineSpec)
	if err != nil {
		return err
	}
	m, err := schedule.NewMapping(algo, s, pi)
	if err != nil {
		return err
	}

	prog, verify := buildProgram(algoName, algo.Set.Upper, seed, algo.NumDeps())
	sim, err := systolic.New(m, prog, mach)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	if traceEvents > 0 {
		fmt.Printf("== event trace (first %d) ==\n", traceEvents)
		if err := sim.Trace(&systolic.WriterTracer{W: os.Stdout, Limit: traceEvents}); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("algorithm: %s\n", algo)
	fmt.Printf("T = [S; Π]:\n%v\n\n", m.T)
	if mach != nil && s.Rows() == 1 {
		dec, err := mach.Decompose(s, algo.D, pi)
		if err == nil {
			names := streamNames(algoName, algo.NumDeps())
			if fig2, err := spacetime.RenderLinearArray(m, dec, names); err == nil {
				fmt.Println(fig2)
			}
		}
	}
	if diagram && s.Rows() == 1 {
		fig3, err := spacetime.RenderSpaceTime(m)
		if err == nil {
			fmt.Println(fig3)
		}
	}
	if diagram && s.Rows() == 2 {
		grid, err := spacetime.RenderGrid2D(m, nil)
		if err == nil {
			fmt.Println(grid)
		}
	}
	fmt.Printf("cycles: %d (schedule t = %d)\n", res.Cycles, m.TotalTime())
	fmt.Printf("processors used: %d, computations: %d, peak parallelism: %d, utilization: %.2f\n",
		res.Processors, res.Computations, res.MaxOccupancy, res.Utilization())
	fmt.Printf("peak buffer occupancy per stream: %v\n", res.MaxBuffered)
	fmt.Printf("computational conflicts: %d, link collisions: %d\n", len(res.Conflicts), len(res.Collisions))
	for i, c := range res.Conflicts {
		if i >= 5 {
			fmt.Printf("  … %d more\n", len(res.Conflicts)-5)
			break
		}
		fmt.Printf("  conflict: %s\n", c)
	}
	if verify != nil {
		if err := verify(res); err != nil {
			return fmt.Errorf("functional verification FAILED: %v", err)
		}
		fmt.Println("functional verification: PASSED (simulated output matches sequential reference)")
	}
	return nil
}

// buildProgram selects the data semantics: real data for matmul and
// convolution, a checksum dataflow for everything else. The returned
// verify function (may be nil) checks functional correctness.
func buildProgram(algoName string, mu []int64, seed int64, streams int) (systolic.Program, func(*systolic.RunResult) error) {
	rng := rand.New(rand.NewSource(seed))
	switch algoName {
	case "matmul":
		n := int(mu[0] + 1)
		a, b := randMat(rng, n), randMat(rng, n)
		prog, err := systolic.NewMatMulProgram(mu[0], a, b)
		if err != nil {
			panic(err)
		}
		return prog, func(res *systolic.RunResult) error {
			got := systolic.CollectMatMulOutputs(mu[0], res.Outputs)
			want := systolic.MatMulReference(a, b)
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						return fmt.Errorf("C[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
					}
				}
			}
			return nil
		}
	case "convolution", "conv":
		h := make([]int64, mu[1]+1)
		x := make([]int64, mu[0]+1)
		for i := range h {
			h[i] = rng.Int63n(19) - 9
		}
		for i := range x {
			x[i] = rng.Int63n(19) - 9
		}
		prog := &systolic.ConvolutionProgram{H: h, X: x}
		return prog, func(res *systolic.RunResult) error {
			got := systolic.CollectConvolutionOutputs(mu[0], mu[1], res.Outputs)
			want := systolic.ConvolutionReference(h, x)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("y[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			return nil
		}
	default:
		return &systolic.ChecksumProgram{Streams: streams}, nil
	}
}

func streamNames(algoName string, m int) []string {
	if algoName == "matmul" {
		return []string{"B", "A", "C"}
	}
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("d%d", i+1)
	}
	return names
}

func randMat(rng *rand.Rand, n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			m[i][j] = rng.Int63n(19) - 9
		}
	}
	return m
}
