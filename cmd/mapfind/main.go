// Command mapfind searches for the time-optimal conflict-free schedule
// of a uniform dependence algorithm given a space mapping, using either
// Procedure 5.1 (enumeration) or the paper's integer-programming
// formulation.
//
// Usage:
//
//	mapfind -algo matmul -mu 4 -s "1,1,-1" [-engine procedure|ilp] [-machine mesh1]
//	mapfind -algo transitive-closure -mu 4 -s "0,0,1" -engine ilp
//	mapfind -algo bit-matmul -mu 3,3 -s "1,0,0,0,0;0,1,0,0,0;0,0,1,1,0"
//
// With -joint no space mapping is given: the Problem 6.2 search finds
// both S and Π (time first, then array cost), fanning candidates across
// -workers goroutines:
//
//	mapfind -algo transitive-closure -mu 4 -joint -dims 1 -workers 4
//
// With -pareto the joint search keeps every non-dominated trade-off
// over (total time, processors, buffer depth, link count) instead of a
// single winner; -pareto-slack widens the explored time window, and
// -pareto-mode (with -pareto-lex or -pareto-weights) picks which front
// member is marked best:
//
//	mapfind -algo matmul -mu 4 -pareto -dims 1 -pareto-slack 2
//	mapfind -algo matmul -mu 4 -pareto -pareto-mode lex -pareto-lex processors,time
//	mapfind -algo matmul -mu 4 -pareto -pareto-mode weighted -pareto-weights time=1,links=10
//
// With -verify the winning mapping is re-certified by the independent
// verification engine (internal/verify); a rejected certificate is
// printed (or embedded in the -json output) and the process exits 4:
//
//	mapfind -algo matmul -mu 4 -s "1,1,-1" -verify -json
//
// Instead of a named algorithm, a loop-nest statement can be analyzed
// directly (the RAB front end), optionally expanded to bit level:
//
//	mapfind -stmt "C[i,j] = C[i,j] + A[i,k]*B[k,j]" -vars i,j,k -mu 4,4,4 -s "1,1,-1"
//	mapfind -stmt "y[i] = y[i] + h[k]*x[i-k]" -vars i,k -mu 6,3 -bits 3 -s "1,0,0,0;0,1,0,0"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lodim/internal/cli"
	"lodim/internal/intmat"
	"lodim/internal/loopnest"
	"lodim/internal/schedule"
	"lodim/internal/trace"
	"lodim/internal/uda"
	"lodim/internal/verify"
)

func main() {
	var (
		algoName = flag.String("algo", "matmul", "algorithm: matmul, transitive-closure, convolution, lu, sor, bit-convolution, bit-matmul, matvec, edit-distance, jacobi2d, correlation")
		sizes    = flag.String("mu", "", "problem sizes, comma separated (defaults per algorithm)")
		sSpec    = flag.String("s", "1,1,-1", "space mapping rows, ';' separated; 'empty:N' for a single processor")
		engine   = flag.String("engine", "procedure", "optimizer: procedure (5.1) or ilp")
		machine  = flag.String("machine", "none", "target machine: none, meshN, or p:<cols>")
		maxCost  = flag.Int64("maxcost", 0, "enumeration cost ceiling (0 = default)")
		stmt     = flag.String("stmt", "", "loop-nest statement to analyze instead of -algo")
		vars     = flag.String("vars", "", "loop variables for -stmt, comma separated")
		bits     = flag.Int64("bits", 0, "bit-expand the algorithm with the given bit bound (0 = word level)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON on stdout")
		stats    = flag.Bool("stats", false, "report search statistics (candidates, pruning rules, wall time)")
		verifyW  = flag.Bool("verify", false, "certify the winning mapping with the independent verification engine; a rejected certificate exits with status 4")
		algoFile = flag.String("algo-file", "", "load a custom algorithm from a JSON file (see uda JSON schema)")
		joint    = flag.Bool("joint", false, "solve Problem 6.2: search S and Π jointly (ignores -s and -engine)")
		pareto   = flag.Bool("pareto", false, "joint search keeping the whole Pareto front over (time, processors, buffers, links)")
		pSlack   = flag.Int64("pareto-slack", 0, "admit schedules up to (optimal time + slack) into the front")
		pMode    = flag.String("pareto-mode", "front", "best-member selection: front, lex, or weighted")
		pLex     = flag.String("pareto-lex", "", "axis priority for -pareto-mode lex, comma separated (time, processors, buffers, links)")
		pWeights = flag.String("pareto-weights", "", "axis weights for -pareto-mode weighted, e.g. time=1,links=10")
		dims     = flag.Int("dims", 1, "array dimensionality for -joint")
		workers  = flag.Int("workers", 1, "parallel workers for the -joint candidate search")
		timeout  = flag.Duration("timeout", 0, "abort the search after this duration (0 = no limit); deadline exits with status 3")
		traceOut = flag.String("trace", "", "write a Perfetto JSON trace of the search to this file (open in ui.perfetto.dev)")
	)
	flag.Parse()
	if err := run2(options{
		algo: *algoName, sizes: *sizes, s: *sSpec, engine: *engine,
		machine: *machine, maxCost: *maxCost, stmt: *stmt, vars: *vars, bits: *bits,
		json: *jsonOut, stats: *stats, algoFile: *algoFile,
		joint: *joint, dims: *dims, workers: *workers, timeout: *timeout,
		verify: *verifyW, trace: *traceOut,
		pareto: *pareto, paretoSlack: *pSlack, paretoMode: *pMode,
		paretoLex: *pLex, paretoWeights: *pWeights,
	}); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			if *jsonOut {
				json.NewEncoder(os.Stdout).Encode(map[string]string{"error": err.Error()})
			}
			fmt.Fprintln(os.Stderr, "mapfind:", err)
			os.Exit(exitTimeout)
		}
		var fe *verify.FailureError
		if errors.As(err, &fe) {
			fmt.Fprintln(os.Stderr, "mapfind:", err)
			os.Exit(exitVerify)
		}
		fmt.Fprintln(os.Stderr, "mapfind:", err)
		os.Exit(1)
	}
}

// exitTimeout is the exit status for a search ended by -timeout, so
// scripts can tell "deadline hit" from ordinary failures.
const exitTimeout = 3

// exitVerify is the exit status when -verify rejects the winning
// mapping: the search produced a result the independent certificate
// checker refutes. The certificate (with its named failing witness) is
// still emitted before exiting.
const exitVerify = 4

type options struct {
	algo, sizes, s, engine, machine string
	maxCost                         int64
	stmt, vars                      string
	bits                            int64
	json                            bool
	stats                           bool
	algoFile                        string
	joint                           bool
	dims, workers                   int
	timeout                         time.Duration
	verify                          bool
	trace                           string
	pareto                          bool
	paretoSlack                     int64
	paretoMode                      string
	paretoLex, paretoWeights        string
}

// certify runs the independent verification engine on a search winner.
// The certificate is always returned for emission; the error is non-nil
// when the certificate is rejected (or the engine itself failed), so
// callers emit first and propagate second.
func certify(m *schedule.Mapping) (*verify.Certificate, error) {
	cert, err := verify.VerifyMapping(m, nil)
	if err != nil {
		return nil, fmt.Errorf("verification engine: %w", err)
	}
	return cert, cert.Err()
}

// printCertificate renders the text-mode witness summary.
func printCertificate(cert *verify.Certificate) {
	if cert == nil {
		return
	}
	if !cert.Valid {
		fmt.Printf("verification: REJECTED — %s witness failed: %s\n", cert.FailedWitness, cert.FailedDetail)
		return
	}
	fmt.Printf("verification: certificate valid — conflict-free, t = %d, %s (lower bound %d via %s)\n",
		cert.TotalTime, cert.Optimality, cert.LowerBound, cert.LowerBoundKind)
	if cert.BruteForce != nil && cert.BruteForce.Ran {
		fmt.Printf("  brute-force cross-check agrees (%d candidate vectors)\n", cert.BruteForce.Points)
	}
	if cert.Simulation != nil && cert.Simulation.Ran {
		fmt.Printf("  simulation cross-check agrees (%d cycles, %d conflicts)\n", cert.Simulation.Cycles, cert.Simulation.Conflicts)
	}
}

// run keeps the original positional signature used by the tests.
func run(algoName, sizes, sSpec, engine, machineSpec string, maxCost int64) error {
	return run2(options{algo: algoName, sizes: sizes, s: sSpec, engine: engine, machine: machineSpec, maxCost: maxCost})
}

func run2(o options) error {
	szs, err := cli.ParseSizes(o.sizes)
	if err != nil {
		return err
	}
	var algo *uda.Algorithm
	if o.algoFile != "" {
		data, err := os.ReadFile(o.algoFile)
		if err != nil {
			return err
		}
		algo = &uda.Algorithm{}
		if err := json.Unmarshal(data, algo); err != nil {
			return fmt.Errorf("parsing %s: %w", o.algoFile, err)
		}
	} else if o.stmt != "" {
		if o.vars == "" {
			return errors.New("-stmt requires -vars")
		}
		varNames := strings.Split(o.vars, ",")
		for i := range varNames {
			varNames[i] = strings.TrimSpace(varNames[i])
		}
		if len(szs) != len(varNames) {
			return fmt.Errorf("-mu has %d sizes for %d variables", len(szs), len(varNames))
		}
		nest, err := loopnest.Parse("stmt", varNames, szs, o.stmt)
		if err != nil {
			return err
		}
		analysis, err := loopnest.Analyze(nest)
		if err != nil {
			return err
		}
		fmt.Println("derived dependencies:")
		for _, d := range analysis.Dependencies {
			fmt.Printf("  %v  (%s, from %s)\n", d.Vector, d.Kind, d.Array)
		}
		algo = analysis.Algorithm
	} else {
		algo, err = cli.Algorithm(o.algo, szs)
		if err != nil {
			return err
		}
	}
	if o.bits > 0 {
		algo = uda.BitExpand(algo, o.bits)
		fmt.Printf("bit-expanded to %s: n=%d, m=%d\n", algo.Name, algo.Dim(), algo.NumDeps())
	}
	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	if o.trace != "" {
		tracer := trace.New(trace.Config{})
		tctx, root := tracer.StartRoot(ctx, "mapfind", "")
		ctx = tctx
		root.SetStr("algorithm", algo.Name)
		// The deferred write runs on every exit path, so a trace of a
		// failed or timed-out search survives for inspection too.
		defer func() {
			root.End()
			if err := writeTraceFile(o.trace, root.Trace()); err != nil {
				fmt.Fprintln(os.Stderr, "mapfind: writing trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "mapfind: search trace written to %s (open in https://ui.perfetto.dev)\n", o.trace)
		}()
	}
	if o.pareto {
		return solvePareto(ctx, algo, o)
	}
	if o.joint {
		return solveJoint(ctx, algo, o)
	}
	return solve(ctx, algo, o)
}

// paretoSelection parses the -pareto-mode/-pareto-lex/-pareto-weights
// flags into the engine's selection knobs. Knobs for an unselected
// mode are rejected, not ignored.
func paretoSelection(o options, opts *schedule.ParetoOptions) error {
	switch o.paretoMode {
	case "", "front":
		opts.Mode = schedule.ModeFront
	case "lex":
		opts.Mode = schedule.ModeLex
	case "weighted":
		opts.Mode = schedule.ModeWeighted
	default:
		return fmt.Errorf("unknown -pareto-mode %q (want front, lex, or weighted)", o.paretoMode)
	}
	if o.paretoLex != "" && opts.Mode != schedule.ModeLex {
		return errors.New("-pareto-lex is only valid with -pareto-mode lex")
	}
	if o.paretoWeights != "" && opts.Mode != schedule.ModeWeighted {
		return errors.New("-pareto-weights is only valid with -pareto-mode weighted")
	}
	if o.paretoLex != "" {
		for _, name := range strings.Split(o.paretoLex, ",") {
			obj, err := schedule.ParseObjective(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.LexOrder = append(opts.LexOrder, obj)
		}
	}
	if o.paretoWeights != "" {
		for _, pair := range strings.Split(o.paretoWeights, ",") {
			name, val, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("malformed -pareto-weights entry %q (want axis=weight)", pair)
			}
			obj, err := schedule.ParseObjective(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			w, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return fmt.Errorf("malformed -pareto-weights entry %q: %v", pair, err)
			}
			opts.Weights[obj] = w
		}
	}
	return opts.ValidateSelection()
}

// solvePareto runs the multi-objective joint search and reports the
// whole non-dominated front.
func solvePareto(ctx context.Context, algo *uda.Algorithm, o options) error {
	opts := &schedule.ParetoOptions{
		Space:     schedule.SpaceOptions{Schedule: schedule.Options{MaxCost: o.maxCost, Workers: o.workers}},
		TimeSlack: o.paretoSlack,
	}
	if err := paretoSelection(o, opts); err != nil {
		return err
	}
	if !o.json {
		fmt.Printf("algorithm: %s\n", algo)
		fmt.Printf("pareto search: %d-D array, time slack %d, %d worker(s)\n", o.dims, o.paretoSlack, o.workers)
	}
	res, err := schedule.FindParetoContext(ctx, algo, o.dims, opts)
	if err != nil {
		return err
	}
	var cert *verify.ParetoCertificate
	var certErr error
	if o.verify {
		members := make([]verify.ParetoInput, len(res.Front))
		for i, m := range res.Front {
			members[i] = verify.ParetoInput{S: m.Mapping.S, Pi: m.Mapping.Pi, Vector: [verify.ParetoAxes]int64(m.Vector)}
		}
		// Slack-window members are deliberately non-optimal in time, so
		// optimality analysis is skipped; everything else — member
		// validity, conflict-freedom, recomputed objectives, the window,
		// non-domination, the pinned order — is re-derived.
		if cert, err = verify.CertifyPareto(ctx, algo, members, res.TimeBound, &verify.Options{SkipOptimality: true}); err != nil {
			return fmt.Errorf("verification engine: %w", err)
		}
		certErr = cert.Err()
	}
	if o.json {
		if err := emitParetoJSON(os.Stdout, algo, res, cert, statsFor(o, res.Stats)); err != nil {
			return err
		}
		return certErr
	}
	fmt.Printf("\npareto front: %d member(s), time window [*, %d]\n", len(res.Front), res.TimeBound)
	for i, m := range res.Front {
		marker := " "
		if i == res.Best {
			marker = "*"
		}
		fmt.Printf("%s [%d] t=%d processors=%d buffers=%d links=%d\n", marker, i,
			m.Vector[schedule.ObjTime], m.Vector[schedule.ObjProcessors],
			m.Vector[schedule.ObjBuffers], m.Vector[schedule.ObjLinks])
		fmt.Printf("    S = %v  Π = %v\n", rowsOneLine(m.Mapping.S), m.Mapping.Pi)
	}
	fmt.Printf("search: %d space candidates (%d pruned)\n", res.Candidates, res.Pruned)
	printStats(o, res.Stats)
	if cert != nil {
		if cert.Valid {
			fmt.Printf("verification: pareto certificate valid — %d member(s), non-domination and order checked\n", len(cert.Members))
		} else {
			fmt.Printf("verification: REJECTED — member %d, %s witness failed: %s\n",
				cert.FailedMember, cert.FailedWitness, cert.FailedDetail)
		}
	}
	return certErr
}

// rowsOneLine renders a small matrix as nested row lists on one line.
func rowsOneLine(m *intmat.Matrix) string {
	parts := make([]string, m.Rows())
	for i := range parts {
		parts[i] = fmt.Sprintf("%v", m.Row(i))
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

// writeTraceFile exports one completed trace as Perfetto JSON.
func writeTraceFile(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WritePerfetto(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// solveJoint runs the Problem 6.2 joint (S, Π) search.
func solveJoint(ctx context.Context, algo *uda.Algorithm, o options) error {
	m, err := cli.Machine(o.machine)
	if err != nil {
		return err
	}
	opts := &schedule.SpaceOptions{
		Schedule: schedule.Options{Machine: m, MaxCost: o.maxCost, Workers: o.workers},
	}
	if !o.json {
		fmt.Printf("algorithm: %s\n", algo)
		fmt.Printf("joint search: %d-D array, %d worker(s)\n", o.dims, o.workers)
	}
	res, err := schedule.FindJointMappingContext(ctx, algo, o.dims, opts)
	if err != nil {
		return err
	}
	var cert *verify.Certificate
	var certErr error
	if o.verify {
		if cert, certErr = certify(res.Mapping); cert == nil {
			return certErr
		}
	}
	if o.json {
		if err := emitJointJSON(os.Stdout, algo, res, cert, statsFor(o, res.Stats)); err != nil {
			return err
		}
		return certErr
	}
	fmt.Printf("\noptimal space mapping S =\n%v\n", res.Mapping.S)
	fmt.Printf("optimal schedule Π° = %v\n", res.Mapping.Pi)
	fmt.Printf("total execution time t = %d (objective f = %d)\n", res.Time, res.Time-1)
	fmt.Printf("array: %d processors, wire length %d, cost %d\n", res.Processors, res.WireLength, res.Cost)
	fmt.Printf("conflict certificate: %s\n", res.ScheduleResult.Conflict)
	fmt.Printf("search: %d space candidates (%d pruned), %d schedule candidates for the winner\n",
		res.Candidates, res.Pruned, res.ScheduleResult.Candidates)
	printStats(o, res.Stats)
	printCertificate(cert)
	return certErr
}

// statsFor gates a result's search statistics on the -stats flag.
func statsFor(o options, st *schedule.SearchStats) *schedule.SearchStats {
	if !o.stats {
		return nil
	}
	return st
}

// printStats renders the text-mode statistics line. Engines that
// predate stats collection (the ILP fallback) report nothing.
func printStats(o options, st *schedule.SearchStats) {
	if !o.stats {
		return
	}
	if st == nil {
		fmt.Println("search stats: not reported by this engine")
		return
	}
	fmt.Printf("search stats: %s\n", st)
}

func solve(ctx context.Context, algo *uda.Algorithm, o options) error {
	jsonOut := o.json
	s, err := cli.ParseMatrix(o.s)
	if err != nil {
		return err
	}
	m, err := cli.Machine(o.machine)
	if err != nil {
		return err
	}
	opts := &schedule.Options{Machine: m, MaxCost: o.maxCost}

	if !jsonOut {
		fmt.Printf("algorithm: %s\n", algo)
		fmt.Printf("space mapping S (%dx%d):\n%v\n", s.Rows(), s.Cols(), s)
	}

	var res *schedule.Result
	switch o.engine {
	case "procedure":
		res, err = schedule.FindOptimalContext(ctx, algo, s, opts)
	case "ilp":
		// The ILP engine has no cancellation hooks; -timeout governs
		// only the enumeration engines.
		res, err = schedule.FindOptimalILP(algo, s, opts)
	default:
		return fmt.Errorf("unknown engine %q", o.engine)
	}
	if err != nil {
		return err
	}
	var cert *verify.Certificate
	var certErr error
	if o.verify {
		if cert, certErr = certify(res.Mapping); cert == nil {
			return certErr
		}
	}
	if jsonOut {
		if err := emitJSON(os.Stdout, algo, res, cert, statsFor(o, res.Stats)); err != nil {
			return err
		}
		return certErr
	}
	fmt.Printf("\noptimal schedule Π° = %v\n", res.Mapping.Pi)
	fmt.Printf("total execution time t = %d (objective f = %d)\n", res.Time, res.Time-1)
	fmt.Printf("conflict certificate: %s\n", res.Conflict)
	fmt.Printf("engine: %s, candidates/nodes examined: %d\n", res.Method, res.Candidates)
	printStats(o, res.Stats)
	if res.Decomp != nil {
		fmt.Printf("machine realization: K =\n%v\nbuffers per dependence: %v (total %d), single-hop: %v\n",
			res.Decomp.K, res.Decomp.Buffers, res.Decomp.TotalBuffers(), res.Decomp.SingleHop())
	}
	printCertificate(cert)
	return certErr
}
