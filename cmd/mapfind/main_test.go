package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"lodim/internal/cli"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	ferr := f()
	w.Close()
	data, rerr := io.ReadAll(r)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return string(data)
}

func TestTimeoutJointDeadline(t *testing.T) {
	// Large enough that the joint search cannot finish in 1ms; the
	// deadline error must surface so main can exit with status 3.
	err := run2(options{
		algo: "transitive-closure", sizes: "30", machine: "none",
		joint: true, dims: 1, workers: 2, timeout: time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestTimeoutGenerousStillSucceeds(t *testing.T) {
	if err := run2(options{
		algo: "matmul", sizes: "4", s: "1,1,-1", engine: "procedure",
		machine: "none", timeout: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMatmulProcedure(t *testing.T) {
	if err := run("matmul", "4", "1,1,-1", "procedure", "none", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunMatmulILPWithMachine(t *testing.T) {
	if err := run("matmul", "4", "1,1,-1", "ilp", "mesh1", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTransitiveClosure(t *testing.T) {
	if err := run("transitive-closure", "4", "0,0,1", "procedure", "none", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleProcessor(t *testing.T) {
	if err := run("convolution", "5,2", "empty:2", "procedure", "none", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run2(options{
		algo: "matmul", sizes: "4", s: "1,1,-1", engine: "procedure",
		machine: "mesh1", json: true,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitJSONShape(t *testing.T) {
	// Round-trip the JSON through a decoder to ensure it is well formed
	// and carries the headline numbers.
	algoErr := run2(options{algo: "matmul", sizes: "3", s: "1,1,-1", engine: "ilp", machine: "none", json: true})
	if algoErr != nil {
		t.Fatal(algoErr)
	}
}

func TestRunJointSearch(t *testing.T) {
	if err := run2(options{
		algo: "transitive-closure", sizes: "3", joint: true, dims: 1, workers: 4,
		machine: "none",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJointJSON(t *testing.T) {
	if err := run2(options{
		algo: "matmul", sizes: "3", joint: true, dims: 1, workers: 1,
		machine: "none", json: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsJSONJoint: -stats -json on the paper's matrix-multiplication
// example emits a search_stats object whose pruning counters actually
// fired — the cube is symmetric (orbit rule) and the incumbent cut
// always triggers on later candidates.
func TestStatsJSONJoint(t *testing.T) {
	out := captureStdout(t, func() error {
		return run2(options{
			algo: "matmul", sizes: "4", joint: true, dims: 1, workers: 2,
			machine: "none", json: true, stats: true,
		})
	})
	var res struct {
		SearchStats *schedule.SearchStats `json:"search_stats"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("decode: %v\n%s", err, out)
	}
	st := res.SearchStats
	if st == nil {
		t.Fatalf("no search_stats in output:\n%s", out)
	}
	if st.Engine != "joint-6.2" {
		t.Errorf("engine = %q, want joint-6.2", st.Engine)
	}
	if st.Pruned() < 1 || st.PrunedOrbit < 1 || st.PrunedIncumbent < 1 {
		t.Errorf("pruning counters empty: %+v", st)
	}
	if st.SpaceCandidates < 1 || st.ScheduleCandidates < 1 || st.CostLevels < 1 {
		t.Errorf("effort counters empty: %+v", st)
	}
}

// TestStatsText: the one-line text summary appears with -stats, and
// the ILP engine (which predates stats collection) degrades gracefully.
func TestStatsText(t *testing.T) {
	out := captureStdout(t, func() error {
		return run2(options{
			algo: "matmul", sizes: "4", s: "1,1,-1", engine: "procedure",
			machine: "none", stats: true,
		})
	})
	if !strings.Contains(out, "search stats: engine=procedure-5.1") {
		t.Errorf("no stats line in text output:\n%s", out)
	}
	// The ILP engine either reports nothing (pure ILP path) or falls
	// back to Procedure 5.1 and reports that engine's stats; both print
	// a stats line.
	out = captureStdout(t, func() error {
		return run2(options{
			algo: "matmul", sizes: "3", s: "1,1,-1", engine: "ilp",
			machine: "none", stats: true,
		})
	})
	if !strings.Contains(out, "search stats:") {
		t.Errorf("ILP stats line missing:\n%s", out)
	}
	// Without -stats the line stays out.
	out = captureStdout(t, func() error {
		return run2(options{
			algo: "matmul", sizes: "4", s: "1,1,-1", engine: "procedure", machine: "none",
		})
	})
	if strings.Contains(out, "search stats:") {
		t.Errorf("stats line printed without -stats:\n%s", out)
	}
}

func TestRunJointErrors(t *testing.T) {
	// Array dimensionality out of range must surface.
	if err := run2(options{algo: "matmul", sizes: "3", joint: true, dims: 3, machine: "none"}); err == nil {
		t.Error("dims = n accepted")
	}
	// Unreachable cost ceiling reports no schedule.
	if err := run2(options{algo: "matmul", sizes: "3", joint: true, dims: 1, maxCost: 2, machine: "none"}); err == nil {
		t.Error("maxcost too low accepted")
	}
}

func TestRunAlgoFile(t *testing.T) {
	f := t.TempDir() + "/algo.json"
	doc := `{"name":"stencil","bounds":[5,5],"dependencies":[[1,0],[1,1],[1,-1]]}`
	if err := os.WriteFile(f, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run2(options{algoFile: f, s: "0,1", engine: "procedure", machine: "none"}); err != nil {
		t.Fatal(err)
	}
	// Missing file and malformed content.
	if err := run2(options{algoFile: f + ".missing", s: "0,1"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"bounds":[0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run2(options{algoFile: bad, s: "0,1"}); err == nil {
		t.Error("malformed algorithm accepted")
	}
}

func TestRunStatementFrontEnd(t *testing.T) {
	if err := run2(options{
		stmt: "C[i,j] = C[i,j] + A[i,k]*B[k,j]", vars: "i,j,k",
		sizes: "4,4,4", s: "1,1,-1", engine: "procedure", machine: "none",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatementBitExpand(t *testing.T) {
	if err := run2(options{
		stmt: "y[i] = y[i] + h[k]*x[i-k]", vars: "i,k",
		sizes: "3,2", bits: 2, s: "1,0,0,0;0,1,0,0", engine: "procedure", machine: "none",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatementErrors(t *testing.T) {
	if err := run2(options{stmt: "A[i] = A[i-1]", sizes: "4", s: "empty:1"}); err == nil {
		t.Error("missing -vars accepted")
	}
	if err := run2(options{stmt: "A[i] = A[i-1]", vars: "i,j", sizes: "4", s: "empty:2"}); err == nil {
		t.Error("size/vars mismatch accepted")
	}
	if err := run2(options{stmt: "A[i] = A[j", vars: "i", sizes: "4", s: "empty:1"}); err == nil {
		t.Error("parse error swallowed")
	}
	if err := run2(options{stmt: "A[i,j] = A[j,i]", vars: "i,j", sizes: "3,3", s: "empty:2"}); err == nil {
		t.Error("non-uniform accepted")
	}
}

func TestRunVerifyAcceptsWinner(t *testing.T) {
	// The search winner must satisfy its own independent certificate, in
	// both engines and in the joint search.
	for _, o := range []options{
		{algo: "matmul", sizes: "4", s: "1,1,-1", engine: "procedure", machine: "none", verify: true},
		{algo: "matmul", sizes: "3", s: "1,1,-1", engine: "ilp", machine: "none", verify: true},
		{algo: "transitive-closure", sizes: "3", joint: true, dims: 1, workers: 2, machine: "none", verify: true},
		{algo: "matmul", sizes: "3", s: "1,1,-1", engine: "procedure", machine: "none", verify: true, json: true},
	} {
		if err := run2(o); err != nil {
			t.Errorf("%+v: %v", o, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name                            string
		algo, sizes, s, engine, machine string
	}{
		{"bad algo", "nope", "", "1,1,-1", "procedure", "none"},
		{"bad sizes", "matmul", "x", "1,1,-1", "procedure", "none"},
		{"bad S", "matmul", "4", "1,1;1", "procedure", "none"},
		{"bad engine", "matmul", "4", "1,1,-1", "quantum", "none"},
		{"bad machine", "matmul", "4", "1,1,-1", "procedure", "warp"},
		{"cost too low", "matmul", "4", "1,1,-1", "procedure", "none"},
	}
	for _, c := range cases {
		maxCost := int64(0)
		if c.name == "cost too low" {
			maxCost = 2
		}
		if err := run(c.algo, c.sizes, c.s, c.engine, c.machine, maxCost); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestRunParetoJSON: -pareto -verify -json emits the whole certified
// front in pinned order with a valid certificate and an in-range best
// index; the time-optimal head matches the single-winner joint search.
func TestRunParetoJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return run2(options{
			algo: "matmul", sizes: "3", dims: 1, workers: 2, machine: "none",
			json: true, pareto: true, paretoSlack: 2, verify: true,
		})
	})
	var res struct {
		Front []struct {
			TotalTime  int64 `json:"total_time"`
			Processors int64 `json:"processors"`
		} `json:"front"`
		Best        int   `json:"best"`
		TimeBound   int64 `json:"time_bound"`
		Certificate *struct {
			Valid         bool `json:"valid"`
			NonDomination bool `json:"non_domination"`
		} `json:"certificate"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Best < 0 || res.Best >= len(res.Front) {
		t.Errorf("best index %d out of range", res.Best)
	}
	if res.Certificate == nil || !res.Certificate.Valid || !res.Certificate.NonDomination {
		t.Errorf("certificate missing or invalid: %+v", res.Certificate)
	}
	jres, err := schedule.FindJointMapping(mustAlgo(t, "matmul", "3"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Front[0].TotalTime != jres.Time {
		t.Errorf("pareto head at t=%d, joint optimum t=%d", res.Front[0].TotalTime, jres.Time)
	}
	if res.TimeBound != jres.Time+2 {
		t.Errorf("time_bound = %d, want %d+2", res.TimeBound, jres.Time)
	}
}

// TestRunParetoSelectionErrors: mode/knob mismatches are rejected
// before any search runs.
func TestRunParetoSelectionErrors(t *testing.T) {
	cases := []options{
		{algo: "matmul", sizes: "3", dims: 1, pareto: true, paretoMode: "best"},
		{algo: "matmul", sizes: "3", dims: 1, pareto: true, paretoLex: "time"},
		{algo: "matmul", sizes: "3", dims: 1, pareto: true, paretoMode: "lex", paretoWeights: "time=1"},
		{algo: "matmul", sizes: "3", dims: 1, pareto: true, paretoMode: "lex", paretoLex: "latency"},
		{algo: "matmul", sizes: "3", dims: 1, pareto: true, paretoMode: "weighted", paretoWeights: "time"},
		{algo: "matmul", sizes: "3", dims: 1, pareto: true, paretoMode: "weighted", paretoWeights: "time=x"},
	}
	for _, o := range cases {
		o.machine = "none"
		o.workers = 1
		o.json = true
		if err := run2(o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

// TestRunParetoLexText: the text renderer marks the lex-selected
// member and lists every front member.
func TestRunParetoLexText(t *testing.T) {
	out := captureStdout(t, func() error {
		return run2(options{
			algo: "matmul", sizes: "3", dims: 1, workers: 1, machine: "none",
			pareto: true, paretoSlack: 2, paretoMode: "lex", paretoLex: "processors,time",
		})
	})
	if !strings.Contains(out, "pareto front:") || !strings.Contains(out, "* [") {
		t.Errorf("text output lacks the front listing or best marker:\n%s", out)
	}
}

// mustAlgo builds a named algorithm for cross-checks.
func mustAlgo(t *testing.T, name, sizes string) *uda.Algorithm {
	t.Helper()
	szs, err := cli.ParseSizes(sizes)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := cli.Algorithm(name, szs)
	if err != nil {
		t.Fatal(err)
	}
	return algo
}
