package main

import (
	"encoding/json"
	"io"

	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
	"lodim/internal/verify"
)

// jsonResult is the machine-readable output of mapfind -json.
type jsonResult struct {
	Algorithm  string    `json:"algorithm"`
	Dim        int       `json:"n"`
	NumDeps    int       `json:"m"`
	Bounds     []int64   `json:"mu"`
	D          [][]int64 `json:"dependence_matrix"`
	S          [][]int64 `json:"space_mapping"`
	Pi         []int64   `json:"schedule"`
	TotalTime  int64     `json:"total_time"`
	Objective  int64     `json:"objective"`
	Method     string    `json:"engine"`
	Candidates int       `json:"candidates"`
	Conflict   string    `json:"conflict_certificate"`
	Machine    *jsonMach `json:"machine,omitempty"`
	// Certificate is the independent verification engine's output when
	// -verify is set; it is emitted even when verification rejects the
	// mapping (the process then exits with status 4).
	Certificate *verify.Certificate `json:"certificate,omitempty"`
	// SearchStats carries the engine's effort report when -stats is set
	// (absent for engines without stats collection, e.g. ILP).
	SearchStats *schedule.SearchStats `json:"search_stats,omitempty"`
}

type jsonMach struct {
	K            [][]int64 `json:"usage_matrix"`
	Buffers      []int64   `json:"buffers"`
	TotalBuffers int64     `json:"total_buffers"`
	SingleHop    bool      `json:"single_hop"`
}

func matrixRows(m *intmat.Matrix) [][]int64 {
	rows := make([][]int64, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// jsonJointResult extends the schedule output with the Problem 6.2
// array metrics.
type jsonJointResult struct {
	jsonResult
	Processors int64 `json:"processors"`
	WireLength int64 `json:"wire_length"`
	Cost       int64 `json:"array_cost"`
	Pruned     int   `json:"pruned"`
}

func emitJointJSON(w io.Writer, algo *uda.Algorithm, res *schedule.JointResult, cert *verify.Certificate, stats *schedule.SearchStats) error {
	out := jsonJointResult{
		jsonResult: jsonResult{
			Algorithm:  algo.Name,
			Dim:        algo.Dim(),
			NumDeps:    algo.NumDeps(),
			Bounds:     algo.Set.Upper,
			D:          matrixRows(algo.D),
			S:          matrixRows(res.Mapping.S),
			Pi:         res.Mapping.Pi,
			TotalTime:  res.Time,
			Objective:  res.Time - 1,
			Method:     res.ScheduleResult.Method,
			Candidates: res.Candidates,
			Conflict:   res.ScheduleResult.Conflict.Method,
		},
		Processors: res.Processors,
		WireLength: res.WireLength,
		Cost:       res.Cost,
		Pruned:     res.Pruned,
	}
	out.Certificate = cert
	out.SearchStats = stats
	if d := res.ScheduleResult.Decomp; d != nil {
		out.Machine = &jsonMach{
			K:            matrixRows(d.K),
			Buffers:      d.Buffers,
			TotalBuffers: d.TotalBuffers(),
			SingleHop:    d.SingleHop(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonParetoMember is one non-dominated trade-off in -pareto output.
type jsonParetoMember struct {
	S          [][]int64 `json:"space_mapping"`
	Pi         []int64   `json:"schedule"`
	TotalTime  int64     `json:"total_time"`
	Processors int64     `json:"processors"`
	Buffers    int64     `json:"buffers"`
	Links      int64     `json:"links"`
}

// jsonParetoResult is the machine-readable output of mapfind -pareto
// -json: the whole front in pinned deterministic order plus the index
// the selection mode marked best.
type jsonParetoResult struct {
	Algorithm  string             `json:"algorithm"`
	Dim        int                `json:"n"`
	NumDeps    int                `json:"m"`
	Bounds     []int64            `json:"mu"`
	D          [][]int64          `json:"dependence_matrix"`
	Front      []jsonParetoMember `json:"front"`
	Best       int                `json:"best"`
	TimeBound  int64              `json:"time_bound"`
	Candidates int                `json:"candidates"`
	Pruned     int                `json:"pruned"`
	// Certificate is the Pareto verifier's output when -verify is set;
	// it is emitted even on rejection (the process then exits 4).
	Certificate *verify.ParetoCertificate `json:"certificate,omitempty"`
	SearchStats *schedule.SearchStats     `json:"search_stats,omitempty"`
}

func emitParetoJSON(w io.Writer, algo *uda.Algorithm, res *schedule.ParetoResult, cert *verify.ParetoCertificate, stats *schedule.SearchStats) error {
	out := jsonParetoResult{
		Algorithm:   algo.Name,
		Dim:         algo.Dim(),
		NumDeps:     algo.NumDeps(),
		Bounds:      algo.Set.Upper,
		D:           matrixRows(algo.D),
		Front:       make([]jsonParetoMember, len(res.Front)),
		Best:        res.Best,
		TimeBound:   res.TimeBound,
		Candidates:  res.Candidates,
		Pruned:      res.Pruned,
		Certificate: cert,
		SearchStats: stats,
	}
	for i, m := range res.Front {
		out.Front[i] = jsonParetoMember{
			S:          matrixRows(m.Mapping.S),
			Pi:         m.Mapping.Pi,
			TotalTime:  m.Vector[schedule.ObjTime],
			Processors: m.Vector[schedule.ObjProcessors],
			Buffers:    m.Vector[schedule.ObjBuffers],
			Links:      m.Vector[schedule.ObjLinks],
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func emitJSON(w io.Writer, algo *uda.Algorithm, res *schedule.Result, cert *verify.Certificate, stats *schedule.SearchStats) error {
	out := jsonResult{
		Algorithm:  algo.Name,
		Dim:        algo.Dim(),
		NumDeps:    algo.NumDeps(),
		Bounds:     algo.Set.Upper,
		D:          matrixRows(algo.D),
		S:          matrixRows(res.Mapping.S),
		Pi:         res.Mapping.Pi,
		TotalTime:  res.Time,
		Objective:  res.Time - 1,
		Method:     res.Method,
		Candidates: res.Candidates,
		Conflict:   res.Conflict.Method,
	}
	out.Certificate = cert
	out.SearchStats = stats
	if res.Decomp != nil {
		out.Machine = &jsonMach{
			K:            matrixRows(res.Decomp.K),
			Buffers:      res.Decomp.Buffers,
			TotalBuffers: res.Decomp.TotalBuffers(),
			SingleHop:    res.Decomp.SingleHop(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
