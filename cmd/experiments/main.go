// Command experiments regenerates every evaluation artifact of the
// paper: Examples 5.1 and 5.2 (with the comparisons against [23] and
// [22]), Figures 1–3, the Hermite-normal-form worked examples (2.1,
// 4.1, 4.2), Proposition 8.1, the engine ablation (Procedure 5.1 vs
// the ILP formulation), the bit-level mapping studies, and the
// extension results (the Theorem 4.7 necessity gap and the Section 6
// future-work problems). Output is deterministic and available as
// terminal text, Markdown (the format EXPERIMENTS.md quotes) or JSON.
//
// Usage:
//
//	experiments -e all
//	experiments -e e51,fig3 -format markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lodim/internal/exp"
)

func main() {
	var (
		sel    = flag.String("e", "all", "comma-separated experiment names, or 'all'")
		format = flag.String("format", "text", "output format: text, markdown, json")
	)
	flag.Parse()
	if err := run(os.Stdout, *sel, *format); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w *os.File, sel, format string) error {
	want := map[string]bool{}
	for _, s := range strings.Split(sel, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	ran := 0
	for _, spec := range exp.Registry() {
		if !all && !want[spec.ID] {
			continue
		}
		ran++
		artifact, err := spec.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", spec.ID, err)
		}
		var out string
		switch format {
		case "text":
			out = exp.RenderText(artifact)
		case "markdown", "md":
			out = exp.RenderMarkdown(artifact)
		case "json":
			out, err = exp.RenderJSON(artifact)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (text, markdown, json)", format)
		}
		fmt.Fprintln(w, out)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment matched; known:")
		for _, spec := range exp.Registry() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", spec.ID, spec.Title)
		}
		return fmt.Errorf("unknown selection %q", sel)
	}
	return nil
}
