package main

import (
	"os"
	"testing"
)

func TestRunSelections(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, c := range []struct{ sel, format string }{
		{"e52", "text"},
		{"fig1,fig2", "markdown"},
		{"gap", "json"},
	} {
		if err := run(null, c.sel, c.format); err != nil {
			t.Errorf("run(%q, %q): %v", c.sel, c.format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run(null, "nope", "text"); err == nil {
		t.Error("unknown selection accepted")
	}
	if err := run(null, "e52", "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
