package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.queue != 64 || cfg.cacheSize != 1024 {
		t.Errorf("defaults off: %+v", cfg)
	}
	if cfg.defTimeout != 30*time.Second || cfg.maxTimeout != 2*time.Minute || cfg.drain != 10*time.Second {
		t.Errorf("duration defaults off: %+v", cfg)
	}
	if cfg.pprofAddr != "" || cfg.logFormat != "text" {
		t.Errorf("observability defaults off: pprof=%q log-format=%q", cfg.pprofAddr, cfg.logFormat)
	}
	if cfg.traceBuffer != 64 || cfg.traceDir != "" || cfg.traceSlowest != 8 || cfg.traceMaxFiles != 0 {
		t.Errorf("trace defaults off: buffer=%d dir=%q slowest=%d max-files=%d", cfg.traceBuffer, cfg.traceDir, cfg.traceSlowest, cfg.traceMaxFiles)
	}
	if cfg.sloAvailability != 0 || cfg.sloLatencyP99 != 0 || cfg.sloWindow != "5m" || cfg.sloEvidenceDir != "" {
		t.Errorf("slo defaults off: %+v", cfg)
	}
	if cfg.sloConfig() != nil {
		t.Error("slo engine configured with no objective flags")
	}
}

func TestParseFlagsSLO(t *testing.T) {
	dir := t.TempDir()
	cfg, err := parseFlags([]string{
		"-slo-availability", "0.999", "-slo-latency-p99", "250ms",
		"-slo-window", "30m", "-slo-evidence-dir", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	slo := cfg.sloConfig()
	if slo == nil {
		t.Fatal("sloConfig() = nil with both objectives set")
	}
	if slo.Availability != 0.999 || slo.LatencyP99 != 250*time.Millisecond || slo.Window != "30m" || slo.EvidenceDir != dir {
		t.Errorf("sloConfig() = %+v", slo)
	}
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"empty addr", []string{"-addr", ""}},
		{"negative pool", []string{"-pool", "-1"}},
		{"queue below -1", []string{"-queue", "-2"}},
		{"negative cache", []string{"-cache", "-5"}},
		{"negative workers", []string{"-workers", "-1"}},
		{"zero timeout", []string{"-timeout", "0s"}},
		{"max below default", []string{"-timeout", "1m", "-max-timeout", "10s"}},
		{"negative drain", []string{"-drain", "-1s"}},
		{"bad log format", []string{"-log-format", "xml"}},
		{"positional junk", []string{"extra"}},
		{"unknown flag", []string{"-no-such-flag"}},
		{"negative trace buffer", []string{"-trace-buffer", "-1"}},
		{"zero trace slowest", []string{"-trace-slowest", "0"}},
		{"trace dir without tracing", []string{"-trace-buffer", "0", "-trace-dir", "/tmp/x"}},
		{"negative job workers", []string{"-jobs-dir", "/tmp/spool", "-job-workers", "-1"}},
		{"negative job queue", []string{"-jobs-dir", "/tmp/spool", "-job-queue", "-1"}},
		{"job workers without spool", []string{"-job-workers", "2"}},
		{"job queue without spool", []string{"-job-queue", "8"}},
		{"unusable jobs dir", []string{"-jobs-dir", "/dev/null/spool"}},
		{"negative trace max files", []string{"-trace-max-files", "-1"}},
		{"trace max files without dir", []string{"-trace-max-files", "5"}},
		{"availability above 1", []string{"-slo-availability", "1.5"}},
		{"availability exactly 1", []string{"-slo-availability", "1"}},
		{"negative availability", []string{"-slo-availability", "-0.1"}},
		{"negative latency slo", []string{"-slo-latency-p99", "-1s"}},
		{"bad slo window", []string{"-slo-availability", "0.99", "-slo-window", "2h"}},
		{"evidence dir without objective", []string{"-slo-evidence-dir", "/tmp/x"}},
		{"unusable evidence dir", []string{"-slo-availability", "0.99", "-slo-evidence-dir", "/dev/null/x"}},
	}
	for _, c := range cases {
		if _, err := parseFlags(c.args); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.args)
		}
	}
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port,
// exercises a request end to end, then drains it via the signal path —
// the same lifecycle main drives.
func TestRunServesAndShutsDown(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-pool", "1", "-drain", "5s",
		"-pprof", "127.0.0.1:0", "-log-format", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	type addrs struct{ main, pprof string }
	addrCh := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(cfg, sigCh, func(addr, pprofAddr string) { addrCh <- addrs{addr, pprofAddr} }, nil)
	}()

	var addr, pprofAddr string
	select {
	case a := <-addrCh:
		addr, pprofAddr = a.main, a.pprof
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// The pprof endpoints answer on their own listener and only there.
	if pprofAddr == "" {
		t.Fatal("pprof address not reported despite -pprof")
	}
	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline: %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof reachable on the service address; it must stay on the -pprof listener")
	}

	body := strings.NewReader(`{"algorithm":"matmul","sizes":[2],"s":[[1,1,-1]],"pi":[1,2,1]}`)
	resp, err = http.Post("http://"+addr+"/v1/verify", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("verify over the real server: %d %s", resp.StatusCode, data)
	}
	var vr struct {
		Valid bool `json:"valid"`
	}
	if err := json.Unmarshal(data, &vr); err != nil || !vr.Valid {
		t.Errorf("verify response: valid=%v err=%v (%s)", vr.Valid, err, data)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

// TestRunTraceSurfaces: with tracing on, the /debug/requests inspector
// answers on the private pprof listener only, and -trace-dir collects
// Perfetto exports of completed requests.
func TestRunTraceSurfaces(t *testing.T) {
	traceDir := t.TempDir()
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-pool", "1", "-drain", "5s",
		"-pprof", "127.0.0.1:0", "-trace-buffer", "8",
		"-trace-dir", traceDir, "-trace-slowest", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	type addrs struct{ main, pprof string }
	addrCh := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(cfg, sigCh, func(addr, pprofAddr string) { addrCh <- addrs{addr, pprofAddr} }, nil)
	}()
	var addr, pprofAddr string
	select {
	case a := <-addrCh:
		addr, pprofAddr = a.main, a.pprof
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		sigCh <- syscall.SIGTERM
		if err := <-done; err != nil {
			t.Errorf("run: %v", err)
		}
	}()

	body := strings.NewReader(`{"algorithm":"matmul","sizes":[2],"dims":1}`)
	resp, err := http.Post("http://"+addr+"/v1/map", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("map: %d", resp.StatusCode)
	}
	if resp.Header.Get("Traceparent") == "" {
		t.Error("traced response carries no traceparent header")
	}

	// The inspector lists the trace — on the pprof listener only. The
	// root span ends just after the response, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get("http://" + pprofAddr + "/debug/requests?format=json")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var list struct {
			Traces []struct {
				Name string `json:"name"`
			} `json:"traces"`
		}
		if err := json.Unmarshal(data, &list); err != nil {
			t.Fatalf("inspector list: %v (%s)", err, data)
		}
		if len(list.Traces) > 0 {
			if list.Traces[0].Name != "map" {
				t.Errorf("inspector lists %q, want map", list.Traces[0].Name)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace never appeared in the inspector")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Get("http://" + addr + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("/debug/requests reachable on the service address; it must stay on the -pprof listener")
	}

	// The directory sink exported the request as <endpoint>-<id>.json.
	for deadline := time.Now().Add(5 * time.Second); ; {
		files, err := os.ReadDir(traceDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) > 0 {
			if !strings.HasPrefix(files[0].Name(), "map-") || !strings.HasSuffix(files[0].Name(), ".json") {
				t.Errorf("trace-dir file %q, want map-<traceid>.json", files[0].Name())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace-dir never received an export")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunListenFailure: a taken port must surface as an error, not a
// hang.
func TestRunListenFailure(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(cfg, sigCh, func(a, _ string) { addrCh <- a }, nil) }()
	addr := <-addrCh
	defer func() {
		sigCh <- syscall.SIGTERM
		<-done
	}()

	taken, err := parseFlags([]string{"-addr", addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(taken, make(chan os.Signal), nil, nil); err == nil {
		t.Error("second bind on one address succeeded")
	}
}

func TestParseClusterFlags(t *testing.T) {
	peers := "a=http://h1:1,b=http://h2:2,c=http://h3:3"
	cfg, err := parseFlags([]string{"-node-id", "b", "-peers", peers})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.nodeID != "b" || cfg.advertise != "http://h2:2" {
		t.Errorf("self = %q @ %q, want b @ http://h2:2", cfg.nodeID, cfg.advertise)
	}
	// cfg.peers holds the other members; self rides separately.
	if len(cfg.peers) != 2 || cfg.peers[0].ID != "a" || cfg.peers[1].ID != "c" {
		t.Errorf("peers = %v, want members a and c", cfg.peers)
	}

	// A node absent from -peers must advertise explicitly.
	cfg, err = parseFlags([]string{"-node-id", "d", "-advertise", "http://h4:4", "-peers", peers})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.advertise != "http://h4:4" || len(cfg.peers) != 3 {
		t.Errorf("external self: %+v", cfg)
	}

	bad := []struct {
		name string
		args []string
	}{
		{"peers without node-id", []string{"-peers", peers}},
		{"node-id without peers", []string{"-node-id", "a"}},
		{"advertise without peers", []string{"-advertise", "http://x:1"}},
		{"self unlisted, no advertise", []string{"-node-id", "zz", "-peers", peers}},
		{"advertise disagrees with list", []string{"-node-id", "b", "-advertise", "http://other:9", "-peers", peers}},
		{"malformed pair", []string{"-node-id", "a", "-peers", "a=http://h1:1,b"}},
		{"duplicate id", []string{"-node-id", "a", "-peers", "a=http://h1:1,a=http://h2:2"}},
		{"zero vnodes", []string{"-node-id", "b", "-peers", peers, "-vnodes", "0"}},
	}
	for _, c := range bad {
		if _, err := parseFlags(c.args); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.args)
		}
	}
}

// TestRunJobTier: a server started with -jobs-dir serves the async job
// endpoints end to end — submit, poll to done, replay the result — and
// drains cleanly with the job tier active.
func TestRunJobTier(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-pool", "1", "-drain", "5s",
		"-jobs-dir", filepath.Join(t.TempDir(), "spool"),
		"-job-workers", "1", "-job-queue", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(cfg, sigCh, func(addr, _ string) { addrCh <- addr }, nil)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	body := strings.NewReader(`{"map":{"bounds":[2,3,4],"dependencies":[[1,0,0],[0,1,0],[0,0,1]],"dims":1}}`)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var jr struct {
		ID    string `json:"job_id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(data, &jr); err != nil || jr.ID == "" {
		t.Fatalf("submit response: %v (%s)", err, data)
	}

	deadline := time.Now().Add(10 * time.Second)
	for jr.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jr.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("poll: %d %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &jr); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Get("http://" + addr + "/v1/jobs/" + jr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var mr struct {
		TotalTime int64 `json:"total_time"`
	}
	if resp.StatusCode != 200 || json.Unmarshal(data, &mr) != nil || mr.TotalTime == 0 {
		t.Fatalf("result: %d %s", resp.StatusCode, data)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}
