package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.queue != 64 || cfg.cacheSize != 1024 {
		t.Errorf("defaults off: %+v", cfg)
	}
	if cfg.defTimeout != 30*time.Second || cfg.maxTimeout != 2*time.Minute || cfg.drain != 10*time.Second {
		t.Errorf("duration defaults off: %+v", cfg)
	}
	if cfg.pprofAddr != "" || cfg.logFormat != "text" {
		t.Errorf("observability defaults off: pprof=%q log-format=%q", cfg.pprofAddr, cfg.logFormat)
	}
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"empty addr", []string{"-addr", ""}},
		{"negative pool", []string{"-pool", "-1"}},
		{"queue below -1", []string{"-queue", "-2"}},
		{"negative cache", []string{"-cache", "-5"}},
		{"negative workers", []string{"-workers", "-1"}},
		{"zero timeout", []string{"-timeout", "0s"}},
		{"max below default", []string{"-timeout", "1m", "-max-timeout", "10s"}},
		{"negative drain", []string{"-drain", "-1s"}},
		{"bad log format", []string{"-log-format", "xml"}},
		{"positional junk", []string{"extra"}},
		{"unknown flag", []string{"-no-such-flag"}},
	}
	for _, c := range cases {
		if _, err := parseFlags(c.args); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.args)
		}
	}
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port,
// exercises a request end to end, then drains it via the signal path —
// the same lifecycle main drives.
func TestRunServesAndShutsDown(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-pool", "1", "-drain", "5s",
		"-pprof", "127.0.0.1:0", "-log-format", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	type addrs struct{ main, pprof string }
	addrCh := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(cfg, sigCh, func(addr, pprofAddr string) { addrCh <- addrs{addr, pprofAddr} }, nil)
	}()

	var addr, pprofAddr string
	select {
	case a := <-addrCh:
		addr, pprofAddr = a.main, a.pprof
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// The pprof endpoints answer on their own listener and only there.
	if pprofAddr == "" {
		t.Fatal("pprof address not reported despite -pprof")
	}
	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline: %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof reachable on the service address; it must stay on the -pprof listener")
	}

	body := strings.NewReader(`{"algorithm":"matmul","sizes":[2],"s":[[1,1,-1]],"pi":[1,2,1]}`)
	resp, err = http.Post("http://"+addr+"/v1/verify", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("verify over the real server: %d %s", resp.StatusCode, data)
	}
	var vr struct {
		Valid bool `json:"valid"`
	}
	if err := json.Unmarshal(data, &vr); err != nil || !vr.Valid {
		t.Errorf("verify response: valid=%v err=%v (%s)", vr.Valid, err, data)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}

// TestRunListenFailure: a taken port must surface as an error, not a
// hang.
func TestRunListenFailure(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(cfg, sigCh, func(a, _ string) { addrCh <- a }, nil) }()
	addr := <-addrCh
	defer func() {
		sigCh <- syscall.SIGTERM
		<-done
	}()

	taken, err := parseFlags([]string{"-addr", addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(taken, make(chan os.Signal), nil, nil); err == nil {
		t.Error("second bind on one address succeeded")
	}
}
