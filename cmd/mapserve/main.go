// Command mapserve serves the joint (S, Π) mapping search, conflict
// checking, systolic simulation, and independent mapping certification
// of this repository over HTTP.
//
// Usage:
//
//	mapserve -addr :8080 -pool 2 -queue 64 -cache 1024
//
// Endpoints:
//
//	POST /v1/map       — time-optimal conflict-free joint mapping
//	POST /v1/conflict  — conflict-freeness decision for a mapping matrix
//	POST /v1/simulate  — cycle-accurate systolic simulation
//	POST /v1/verify    — independent certificate for a given (S, Π)
//	GET  /metrics      — Prometheus text metrics
//	GET  /debug/vars   — expvar counters
//	GET  /healthz      — liveness probe (JSON status)
//
// With -peers "a=http://hostA:8080,b=http://hostB:8080" and -node-id
// the server joins a mapserve cluster: the canonical cache is sharded
// over a consistent-hash ring, cache misses are forwarded to the key's
// owner (POST /peer/v1/lookup) and filled locally, and a distributed
// singleflight guarantees each problem is searched at most once
// cluster-wide. POST /v1/batch answers many map queries per request.
//
// With -slo-availability and/or -slo-latency-p99 the server evaluates
// rolling burn-rate SLOs over the public sync endpoints: a breach logs
// one structured alert line, flips /healthz to "degraded", and (with
// -slo-evidence-dir) captures a CPU profile plus the slowest traces.
// GET /v1/cluster/status merges every node's snapshot — counters, SLO
// verdicts, per-tenant usage (X-Mapserve-Tenant) — into a fleet view.
//
// With -pprof ADDR a private debug listener additionally serves
// /debug/pprof/ and the /debug/requests trace inspector (the last
// -trace-buffer completed request traces as HTML, JSON, or Perfetto
// exports); -trace-dir DIR keeps the slowest -trace-slowest traces per
// endpoint on disk as Perfetto JSON.
//
// Identical problems — including axis-permuted restatements of one
// problem — are answered from a canonical LRU cache, and concurrent
// identical requests share a single search (see internal/service).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/service"
	"lodim/internal/slo"
	"lodim/internal/trace"
)

// config is the parsed and validated command line.
type config struct {
	addr         string
	pprofAddr    string
	logFormat    string
	pool         int
	queue        int
	cacheSize    int
	workers      int
	defTimeout   time.Duration
	maxTimeout   time.Duration
	drain        time.Duration
	traceBuffer  int
	traceDir     string
	traceSlowest int

	// Async job tier (empty jobsDir = disabled).
	jobsDir    string
	jobWorkers int
	jobQueue   int

	// SLO engine (both objectives zero = disabled).
	sloAvailability float64
	sloLatencyP99   time.Duration
	sloWindow       string
	sloEvidenceDir  string
	traceMaxFiles   int

	// Cluster membership (all empty = single node).
	nodeID    string
	advertise string
	peers     []cluster.Member
	vnodes    int
}

// parseFlags parses args (without the program name) into a validated
// config. Kept apart from main so tests can drive the full flag surface
// without exiting the process.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("mapserve", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "access-log format: text or json")
	fs.IntVar(&cfg.pool, "pool", 0, "max concurrent searches (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queue, "queue", 64, "max requests waiting for a search slot before 429 (-1 = no queue)")
	fs.IntVar(&cfg.cacheSize, "cache", 1024, "canonical result cache size in entries")
	fs.IntVar(&cfg.workers, "workers", 0, "goroutines per joint search (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.defTimeout, "timeout", 30*time.Second, "default per-request search deadline")
	fs.DurationVar(&cfg.maxTimeout, "max-timeout", 2*time.Minute, "ceiling on request-supplied deadlines")
	fs.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful shutdown grace period")
	fs.IntVar(&cfg.traceBuffer, "trace-buffer", 64, "completed request traces kept for the /debug/requests inspector (0 = tracing off)")
	fs.StringVar(&cfg.traceDir, "trace-dir", "", "export the slowest traces per endpoint as Perfetto JSON into this directory (empty = disabled)")
	fs.IntVar(&cfg.traceSlowest, "trace-slowest", 8, "slowest traces retained per endpoint in -trace-dir")
	fs.IntVar(&cfg.traceMaxFiles, "trace-max-files", 0, "total trace files allowed in -trace-dir across all endpoints, oldest evicted first (0 = unlimited)")
	fs.Float64Var(&cfg.sloAvailability, "slo-availability", 0, "availability SLO target in (0,1), e.g. 0.999 (0 = objective disabled)")
	fs.DurationVar(&cfg.sloLatencyP99, "slo-latency-p99", 0, "p99 latency SLO threshold, e.g. 500ms (0 = objective disabled)")
	fs.StringVar(&cfg.sloWindow, "slo-window", "5m", "slow SLO evaluation window: "+strings.Join(slo.SlowWindowNames(), ", "))
	fs.StringVar(&cfg.sloEvidenceDir, "slo-evidence-dir", "", "write a breach evidence bundle (CPU profile + slowest traces) into this directory (empty = disabled)")
	fs.StringVar(&cfg.jobsDir, "jobs-dir", "", "spool directory for the durable async job tier (empty = /v1/jobs disabled)")
	fs.IntVar(&cfg.jobWorkers, "job-workers", 0, "async job executor goroutines (0 = default)")
	fs.IntVar(&cfg.jobQueue, "job-queue", 0, "queued jobs allowed per tenant before 429 (0 = default)")
	var peersFlag string
	fs.StringVar(&cfg.nodeID, "node-id", "", "this node's cluster identity (required with -peers)")
	fs.StringVar(&cfg.advertise, "advertise", "", "URL peers use to reach this node, e.g. http://10.0.0.1:8080 (required with -peers)")
	fs.StringVar(&peersFlag, "peers", "", "comma-separated cluster membership as id=url pairs, including this node (empty = single node)")
	fs.IntVar(&cfg.vnodes, "vnodes", cluster.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.addr == "" {
		return nil, errors.New("-addr must not be empty")
	}
	if cfg.pool < 0 {
		return nil, fmt.Errorf("-pool must be >= 0, got %d", cfg.pool)
	}
	if cfg.queue < -1 {
		return nil, fmt.Errorf("-queue must be >= -1, got %d", cfg.queue)
	}
	if cfg.cacheSize < 0 {
		return nil, fmt.Errorf("-cache must be >= 0, got %d", cfg.cacheSize)
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.defTimeout <= 0 {
		return nil, fmt.Errorf("-timeout must be positive, got %s", cfg.defTimeout)
	}
	if cfg.maxTimeout < cfg.defTimeout {
		return nil, fmt.Errorf("-max-timeout (%s) must be >= -timeout (%s)", cfg.maxTimeout, cfg.defTimeout)
	}
	if cfg.drain < 0 {
		return nil, fmt.Errorf("-drain must be >= 0, got %s", cfg.drain)
	}
	if cfg.logFormat != "text" && cfg.logFormat != "json" {
		return nil, fmt.Errorf("-log-format must be text or json, got %q", cfg.logFormat)
	}
	if cfg.traceBuffer < 0 {
		return nil, fmt.Errorf("-trace-buffer must be >= 0, got %d", cfg.traceBuffer)
	}
	if cfg.traceSlowest < 1 {
		return nil, fmt.Errorf("-trace-slowest must be >= 1, got %d", cfg.traceSlowest)
	}
	if cfg.traceDir != "" && cfg.traceBuffer == 0 {
		return nil, errors.New("-trace-dir requires tracing: set -trace-buffer > 0")
	}
	if cfg.traceMaxFiles < 0 {
		return nil, fmt.Errorf("-trace-max-files must be >= 0, got %d", cfg.traceMaxFiles)
	}
	if cfg.traceMaxFiles > 0 && cfg.traceDir == "" {
		return nil, errors.New("-trace-max-files requires -trace-dir")
	}
	if cfg.sloAvailability < 0 || cfg.sloAvailability >= 1 {
		if cfg.sloAvailability != 0 {
			return nil, fmt.Errorf("-slo-availability must be in (0,1), got %g", cfg.sloAvailability)
		}
	}
	if cfg.sloLatencyP99 < 0 {
		return nil, fmt.Errorf("-slo-latency-p99 must be >= 0, got %s", cfg.sloLatencyP99)
	}
	if !slo.ValidSlowWindow(cfg.sloWindow) {
		return nil, fmt.Errorf("-slo-window must be one of %s, got %q", strings.Join(slo.SlowWindowNames(), ", "), cfg.sloWindow)
	}
	if cfg.sloEvidenceDir != "" {
		if cfg.sloAvailability == 0 && cfg.sloLatencyP99 == 0 {
			return nil, errors.New("-slo-evidence-dir requires an objective: set -slo-availability or -slo-latency-p99")
		}
		// Probe the evidence directory now: a bad path should be a flag
		// error, not a silently dropped capture at breach time.
		if err := os.MkdirAll(cfg.sloEvidenceDir, 0o755); err != nil {
			return nil, fmt.Errorf("-slo-evidence-dir: %w", err)
		}
	}
	if err := service.ValidateSLOConfig(cfg.sloConfig()); err != nil {
		return nil, fmt.Errorf("slo flags: %w", err)
	}
	if cfg.jobWorkers < 0 {
		return nil, fmt.Errorf("-job-workers must be >= 0, got %d", cfg.jobWorkers)
	}
	if cfg.jobQueue < 0 {
		return nil, fmt.Errorf("-job-queue must be >= 0, got %d", cfg.jobQueue)
	}
	if cfg.jobsDir == "" && (cfg.jobWorkers != 0 || cfg.jobQueue != 0) {
		return nil, errors.New("-job-workers and -job-queue require -jobs-dir")
	}
	if cfg.jobsDir != "" {
		// Probe the spool now: a bad path should be a flag error (exit
		// 2), not a panic inside service.New.
		if err := os.MkdirAll(cfg.jobsDir, 0o755); err != nil {
			return nil, fmt.Errorf("-jobs-dir: %w", err)
		}
	}
	if err := parseClusterFlags(cfg, peersFlag); err != nil {
		return nil, err
	}
	return cfg, nil
}

// sloConfig assembles the service-facing SLO knobs, nil when no
// objective was asked for.
func (c *config) sloConfig() *service.SLOConfig {
	if c.sloAvailability == 0 && c.sloLatencyP99 == 0 {
		return nil
	}
	return &service.SLOConfig{
		Availability: c.sloAvailability,
		LatencyP99:   c.sloLatencyP99,
		Window:       c.sloWindow,
		EvidenceDir:  c.sloEvidenceDir,
	}
}

// parseClusterFlags validates the membership trio: -peers lists every
// member as id=url pairs (this node included, so one list can be copied
// to every node), -node-id picks this node out of the list, and
// -advertise must agree with the list's entry for it. Building the ring
// here surfaces duplicate IDs or an empty membership as a flag error
// (exit 2) instead of a later panic in service.New.
func parseClusterFlags(cfg *config, peersFlag string) error {
	if peersFlag == "" {
		if cfg.nodeID != "" || cfg.advertise != "" {
			return errors.New("-node-id/-advertise require -peers")
		}
		return nil
	}
	if cfg.nodeID == "" {
		return errors.New("-peers requires -node-id")
	}
	if cfg.vnodes < 1 {
		return fmt.Errorf("-vnodes must be >= 1, got %d", cfg.vnodes)
	}
	var members []cluster.Member
	selfListed := false
	for _, pair := range strings.Split(peersFlag, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return fmt.Errorf("-peers entry %q is not id=url", pair)
		}
		m := cluster.Member{ID: id, URL: strings.TrimSuffix(url, "/")}
		if id == cfg.nodeID {
			selfListed = true
			if cfg.advertise == "" {
				cfg.advertise = m.URL
			} else if strings.TrimSuffix(cfg.advertise, "/") != m.URL {
				return fmt.Errorf("-advertise %q disagrees with the -peers entry for %s (%s)", cfg.advertise, id, m.URL)
			}
			continue
		}
		members = append(members, m)
	}
	if !selfListed && cfg.advertise == "" {
		return fmt.Errorf("-peers does not list -node-id %q and no -advertise was given", cfg.nodeID)
	}
	cfg.advertise = strings.TrimSuffix(cfg.advertise, "/")
	cfg.peers = members
	all := append([]cluster.Member{{ID: cfg.nodeID, URL: cfg.advertise}}, members...)
	if _, err := cluster.NewRing(cfg.vnodes, all...); err != nil {
		return fmt.Errorf("-peers: %w", err)
	}
	return nil
}

// newLogger builds the structured access logger for the chosen format.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// pprofHandler builds an explicit mux for the private debug listener:
// the profiling endpoints plus the /debug/requests trace inspector.
// Both expose request internals, so they are served only on the
// dedicated -pprof address, never on the service address.
func pprofHandler(requests http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if requests != nil {
		mux.Handle("/debug/requests", requests)
	}
	return mux
}

// run starts the server and blocks until a signal arrives on sigCh or
// the listener fails. ready (optional) is called with the bound service
// and pprof addresses once the listeners are up — with
// "-addr 127.0.0.1:0" this is how tests learn the ephemeral ports
// (pprofAddr is "" when -pprof is disabled). onService (optional)
// receives the Service before serving starts; main uses it to publish
// expvar, which must stay out of run so tests can start many instances
// without duplicate-Publish panics.
func run(cfg *config, sigCh <-chan os.Signal, ready func(addr, pprofAddr string), onService func(*service.Service)) error {
	scfg := service.Config{
		Pool:           cfg.pool,
		Queue:          cfg.queue,
		CacheSize:      cfg.cacheSize,
		SearchWorkers:  cfg.workers,
		DefaultTimeout: cfg.defTimeout,
		MaxTimeout:     cfg.maxTimeout,
		Logger:         newLogger(cfg.logFormat),
		TraceBuffer:    cfg.traceBuffer,
		SLO:            cfg.sloConfig(),
	}
	if scfg.SLO != nil {
		log.Printf("mapserve: slo engine on (availability %g, latency-p99 %s, window %s)",
			cfg.sloAvailability, cfg.sloLatencyP99, cfg.sloWindow)
	}
	if cfg.jobsDir != "" {
		scfg.Jobs = &service.JobsConfig{
			Dir:            cfg.jobsDir,
			Workers:        cfg.jobWorkers,
			PerTenantQueue: cfg.jobQueue,
		}
		log.Printf("mapserve: async job tier spooling to %s", cfg.jobsDir)
	}
	if cfg.nodeID != "" {
		scfg.Cluster = &service.ClusterConfig{
			Self:   cluster.Member{ID: cfg.nodeID, URL: cfg.advertise},
			Peers:  cfg.peers,
			VNodes: cfg.vnodes,
		}
		log.Printf("mapserve: cluster node %s advertising %s with %d peer(s)", cfg.nodeID, cfg.advertise, len(cfg.peers))
	}
	svc := service.New(scfg)
	if cfg.traceDir != "" {
		ds, err := trace.NewDirSinkLimited(cfg.traceDir, cfg.traceSlowest, cfg.traceMaxFiles)
		if err != nil {
			svc.Close()
			return fmt.Errorf("trace dir: %w", err)
		}
		svc.Tracer().AddSink(ds.Add)
		log.Printf("mapserve: exporting the %d slowest traces per endpoint to %s", cfg.traceSlowest, cfg.traceDir)
	}
	if onService != nil {
		onService(svc)
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(svc))
	mux.Handle("GET /debug/vars", expvar.Handler())
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		svc.Close()
		return err
	}

	pprofAddr := ""
	if cfg.pprofAddr != "" {
		pprofLn, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			ln.Close()
			svc.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		pprofSrv := &http.Server{
			Handler:           pprofHandler(svc.DebugHandler()),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go pprofSrv.Serve(pprofLn)
		defer pprofSrv.Close()
		pprofAddr = pprofLn.Addr().String()
		log.Printf("mapserve: pprof listening on %s", pprofAddr)
	}

	log.Printf("mapserve: listening on %s (pool %d, queue %d, cache %d)", ln.Addr(), cfg.pool, cfg.queue, cfg.cacheSize)
	if ready != nil {
		ready(ln.Addr().String(), pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		svc.Close()
		return err
	case sig := <-sigCh:
		log.Printf("mapserve: %s received, draining for up to %s", sig, cfg.drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mapserve: shutdown: %v", err)
	}
	svc.Close()
	log.Printf("mapserve: bye")
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "mapserve:", err)
		os.Exit(2)
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, sigCh, nil, func(svc *service.Service) {
		// Expvar publication lives here, not in the service, so tests can
		// build many Service instances without duplicate-Publish panics.
		expvar.Publish("mapserve", expvar.Func(func() any { return svc.Metrics().Snapshot() }))
	}); err != nil {
		fmt.Fprintln(os.Stderr, "mapserve:", err)
		os.Exit(1)
	}
}
