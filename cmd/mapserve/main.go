// Command mapserve serves the joint (S, Π) mapping search, conflict
// checking, and systolic simulation of this repository over HTTP.
//
// Usage:
//
//	mapserve -addr :8080 -pool 2 -queue 64 -cache 1024
//
// Endpoints:
//
//	POST /v1/map       — time-optimal conflict-free joint mapping
//	POST /v1/conflict  — conflict-freeness decision for a mapping matrix
//	POST /v1/simulate  — cycle-accurate systolic simulation
//	GET  /metrics      — Prometheus text metrics
//	GET  /debug/vars   — expvar counters
//	GET  /healthz      — liveness probe
//
// Identical problems — including axis-permuted restatements of one
// problem — are answered from a canonical LRU cache, and concurrent
// identical requests share a single search (see internal/service).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lodim/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		pool       = flag.Int("pool", 0, "max concurrent searches (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "max requests waiting for a search slot before 429 (-1 = no queue)")
		cacheSize  = flag.Int("cache", 1024, "canonical result cache size in entries")
		workers    = flag.Int("workers", 0, "goroutines per joint search (0 = GOMAXPROCS)")
		defTimeout = flag.Duration("timeout", 30*time.Second, "default per-request search deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "ceiling on request-supplied deadlines")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Pool:           *pool,
		Queue:          *queue,
		CacheSize:      *cacheSize,
		SearchWorkers:  *workers,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
	})
	// Expvar publication lives here, not in the service, so tests can
	// build many Service instances without duplicate-Publish panics.
	expvar.Publish("mapserve", expvar.Func(func() any { return svc.Metrics().Snapshot() }))

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(svc))
	mux.Handle("GET /debug/vars", expvar.Handler())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mapserve: listening on %s (pool %d, queue %d, cache %d)", *addr, *pool, *queue, *cacheSize)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mapserve:", err)
		os.Exit(1)
	case sig := <-sigCh:
		log.Printf("mapserve: %s received, draining for up to %s", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mapserve: shutdown: %v", err)
	}
	svc.Close()
	log.Printf("mapserve: bye")
}
