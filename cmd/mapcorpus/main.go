// Command mapcorpus builds and replays the committed scenario corpus
// (internal/corpus): a seeded, deterministic set of mapping problems
// with their recorded engine outcomes, used as a differential
// regression oracle.
//
// Usage:
//
//	mapcorpus gen   -n 10000 -seed 7 -out corpus/manifest.jsonl
//	mapcorpus check -manifest corpus/manifest.jsonl -sample 500 -seed 1
//
// gen solves every instance and writes the JSONL manifest (the same
// seed and count always produce a byte-identical file). check replays
// a deterministic stratified sample through today's engines and the
// independent verifier, prints every divergence, and exits 1 when any
// instance's recorded outcome is not reproduced exactly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"lodim/internal/corpus"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "mapcorpus: usage: mapcorpus <gen|check> [flags]")
		return 2
	}
	switch args[0] {
	case "gen":
		return runGen(ctx, args[1:], stdout, stderr)
	case "check":
		return runCheck(ctx, args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "mapcorpus: unknown subcommand %q (want gen or check)\n", args[0])
		return 2
	}
}

func runGen(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mapcorpus gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 10000, "instances to generate")
	seed := fs.Uint64("seed", 7, "corpus seed")
	out := fs.String("out", "", "manifest path (default stdout)")
	workers := fs.Int("workers", 0, "solver parallelism (0 = NumCPU)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	start := time.Now()
	meta, insts, err := corpus.Generate(ctx, *seed, *n, *workers)
	if err != nil {
		fmt.Fprintln(stderr, "mapcorpus:", err)
		return 2
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "mapcorpus:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := corpus.Write(w, meta, insts); err != nil {
		fmt.Fprintln(stderr, "mapcorpus:", err)
		return 2
	}
	feasible := 0
	for i := range insts {
		if insts[i].Feasible {
			feasible++
		}
	}
	fmt.Fprintf(stderr, "mapcorpus: generated %d instances (%d feasible, %d infeasible) in %v\n",
		len(insts), feasible, len(insts)-feasible, time.Since(start).Round(time.Millisecond))
	return 0
}

func runCheck(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mapcorpus check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	manifest := fs.String("manifest", "corpus/manifest.jsonl", "manifest to replay")
	sample := fs.Int("sample", 500, "stratified sample size (0 = full corpus)")
	seed := fs.Uint64("seed", 1, "sampling seed")
	workers := fs.Int("workers", 0, "checker parallelism (0 = NumCPU)")
	pareto := fs.Bool("pareto", false, "replay through the multi-objective engine and Pareto verifier instead")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	meta, insts, err := corpus.ReadFile(*manifest)
	if err != nil {
		fmt.Fprintln(stderr, "mapcorpus:", err)
		return 2
	}
	n := *sample
	if n <= 0 || n > len(insts) {
		n = len(insts)
	}
	start := time.Now()
	check := corpus.CheckSample
	if *pareto {
		check = corpus.CheckParetoSample
	}
	divs, err := check(ctx, insts, n, *seed, *workers)
	if err != nil {
		fmt.Fprintln(stderr, "mapcorpus:", err)
		return 2
	}
	for _, d := range divs {
		fmt.Fprintf(stdout, "DIVERGENCE %s: %v\n", d.ID, d.Err)
	}
	fmt.Fprintf(stderr, "mapcorpus: checked %d/%d instances of %s (seed %d): %d divergences in %v\n",
		n, meta.Count, meta.Corpus, meta.Seed, len(divs), time.Since(start).Round(time.Millisecond))
	if len(divs) > 0 {
		return 1
	}
	return 0
}
