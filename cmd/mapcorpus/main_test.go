package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lodim/internal/corpus"
)

func TestGenCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "manifest.jsonl")
	ctx := context.Background()

	var out, errw bytes.Buffer
	if code := run(ctx, []string{"gen", "-n", "50", "-seed", "3", "-out", manifest}, &out, &errw); code != 0 {
		t.Fatalf("gen exit %d: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "generated 50 instances") {
		t.Fatalf("gen summary: %q", errw.String())
	}

	out.Reset()
	errw.Reset()
	if code := run(ctx, []string{"check", "-manifest", manifest, "-sample", "20"}, &out, &errw); code != 0 {
		t.Fatalf("check exit %d: %s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "0 divergences") {
		t.Fatalf("check summary: %q", errw.String())
	}

	// Tamper with one recorded outcome: the checker must fail and name
	// the instance.
	meta, insts, err := corpus.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	tampered := ""
	for i := range insts {
		if insts[i].Feasible {
			insts[i].TotalTime++
			tampered = insts[i].ID
			break
		}
	}
	f, err := os.Create(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.Write(f, meta, insts); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out.Reset()
	errw.Reset()
	if code := run(ctx, []string{"check", "-manifest", manifest, "-sample", "0"}, &out, &errw); code != 1 {
		t.Fatalf("check of tampered manifest exit %d, want 1: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "DIVERGENCE "+tampered) {
		t.Fatalf("divergence report %q does not name %s", out.String(), tampered)
	}
}

func TestBadUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(context.Background(), nil, &out, &errw); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"frobnicate"}, &out, &errw); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"check", "-manifest", "/nonexistent/x.jsonl"}, &out, &errw); code != 2 {
		t.Fatalf("missing manifest: exit %d, want 2", code)
	}
}
