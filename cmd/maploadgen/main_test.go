package main

import (
	"context"
	"os"
	"path/filepath"

	"io"
	scenarios "lodim/internal/corpus"
	"sort"
	"testing"
	"time"
)

func TestParseFlagsValidation(t *testing.T) {
	bad := [][]string{
		{},                                       // neither -targets nor -inproc
		{"-targets", "http://x", "-inproc", "2"}, // both
		{"-inproc", "0"},
		{"-inproc", "17"},
		{"-inproc", "2", "-n", "0"},
		{"-inproc", "2", "-problems", "0"},
		{"-inproc", "2", "-concurrency", "0"},
		{"-inproc", "2", "-dims", "3"},
		{"-inproc", "2", "-rps", "-1"},
		{"-inproc", "2", "-max-retries", "-1"},
		{"-inproc", "2", "-tenants", "-1"},
		{"-inproc", "2", "junk"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}

	cfg, err := parseFlags([]string{"-targets", "http://a/, http://b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.targets) != 2 || cfg.targets[0] != "http://a" || cfg.targets[1] != "http://b" {
		t.Errorf("targets = %v", cfg.targets)
	}
}

// TestCorpusDeterministicAndPermuted: one seed gives one corpus, and
// every request is a permutation of a base problem — same multiset of
// bounds, same dependency count.
func TestCorpusDeterministicAndPermuted(t *testing.T) {
	cfg := &config{n: 100, problems: 8, seed: 7, dims: 1}
	a, b := corpus(cfg), corpus(cfg)
	if len(a) != 100 {
		t.Fatalf("corpus size %d", len(a))
	}
	for i := range a {
		if len(a[i].Bounds) != 3 || len(a[i].Dependencies) < 3 {
			t.Fatalf("degenerate problem %d: %+v", i, a[i])
		}
		if !sameProblem(a[i], b[i]) {
			t.Fatalf("corpus not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Distinct seeds must differ somewhere.
	c := corpus(&config{n: 100, problems: 8, seed: 8, dims: 1})
	same := true
	for i := range a {
		if !sameProblem(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("two seeds produced identical corpora")
	}
}

func sameProblem(x, y problem) bool {
	if len(x.Bounds) != len(y.Bounds) || len(x.Dependencies) != len(y.Dependencies) {
		return false
	}
	for i := range x.Bounds {
		if x.Bounds[i] != y.Bounds[i] {
			return false
		}
	}
	for i := range x.Dependencies {
		for j := range x.Dependencies[i] {
			if x.Dependencies[i][j] != y.Dependencies[i][j] {
				return false
			}
		}
	}
	return true
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sort.Float64s(vals)
	for _, c := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 9}, {0.99, 9}, {1.0, 10}} {
		if got := percentile(vals, c.q); got != c.want {
			t.Errorf("p%.0f = %g, want %g", c.q*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
}

// TestRunInprocCluster drives a real 2-node in-process cluster with a
// small permuted corpus: every request succeeds, duplicates hit caches
// rather than searching, and the SLO verdicts land in the report.
func TestRunInprocCluster(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-inproc", "2", "-n", "60", "-problems", "4",
		"-concurrency", "4", "-seed", "3", "-timeout", "30s",
		"-slo-error-rate", "0", "-slo-hit-ratio", "0.5",
		"-tenants", "3", "-cluster-status",
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, pass, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 60 || rep.Errors != 0 {
		t.Fatalf("ok/errors = %d/%d, want 60/0 (%+v)", rep.OK, rep.Errors, rep.ByStatus)
	}
	// 4 distinct problems; everything beyond the first statement of
	// each must come from a cache somewhere in the cluster. Allow twice
	// the corpus for races where both nodes search one problem.
	searches := rep.Cache["miss"] + rep.Cache["peer_miss"]
	if searches > 2*cfg.problems {
		t.Errorf("searches = %d for %d problems (%+v)", searches, cfg.problems, rep.Cache)
	}
	if got := rep.Ratios["aggregate_hit"]; got < 0.5 {
		t.Errorf("aggregate hit ratio %.3f < 0.5 (%+v)", got, rep.Cache)
	}
	if !pass {
		t.Errorf("SLOs failed: %+v", rep.SLOs)
	}
	if len(rep.SLOs) != 2 {
		t.Errorf("slo verdicts = %+v, want error_rate and hit_ratio", rep.SLOs)
	}
	if rep.LatencyMS["p99"] <= 0 || rep.WallSecs <= 0 {
		t.Errorf("degenerate timing: %+v %v", rep.LatencyMS, rep.WallSecs)
	}
	// The server-side fleet view was polled and merged: both nodes
	// healthy, and the three synthetic tenants each accounted. The last
	// few requests may still be mid-accounting when the final status
	// sample lands, so bound the total loosely from below.
	if rep.Server == nil {
		t.Fatal("-cluster-status set but the report has no server view")
	}
	fleet := rep.Server.Fleet
	if fleet.Status != "ok" || fleet.Nodes != 2 || fleet.Healthy != 2 || fleet.Unreachable != 0 {
		t.Errorf("fleet = %+v, want 2 healthy nodes", fleet)
	}
	if rep.Server.Polls < 1 {
		t.Error("cluster status never polled")
	}
	var tenantTotal int64
	seen := map[string]bool{}
	for _, tu := range fleet.Tenants {
		tenantTotal += tu.Requests
		seen[tu.Tenant] = true
	}
	if len(seen) != 3 || !seen["tenant-000"] || !seen["tenant-001"] || !seen["tenant-002"] {
		t.Errorf("fleet tenants = %+v, want tenant-000..002", fleet.Tenants)
	}
	if tenantTotal < 50 {
		t.Errorf("fleet tenant requests sum to %d, want ≈ 60", tenantTotal)
	}
	if time.Since(start) > 60*time.Second {
		t.Errorf("load test took %v", time.Since(start))
	}
}

// TestRunWithManifestCorpus: a corpus-driven run against an in-process
// cluster reports per-family request counts and hit ratios. Repeats of
// each base instance (in permuted axis orders) must land in caches, so
// every family's hit ratio is strictly positive.
func TestRunWithManifestCorpus(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "manifest.jsonl")
	meta, insts, err := scenarios.Generate(context.Background(), 11, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenarios.Write(f, meta, insts); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg, err := parseFlags([]string{
		"-inproc", "2", "-n", "120", "-corpus", manifest,
		"-concurrency", "4", "-seed", "5", "-slo-error-rate", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, pass, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !pass || rep.Errors != 0 {
		t.Fatalf("corpus run failed: errors=%d slos=%+v statuses=%v", rep.Errors, rep.SLOs, rep.ByStatus)
	}
	if len(rep.Families) == 0 {
		t.Fatal("corpus-driven report has no family breakdown")
	}
	total := 0
	for fam, fs := range rep.Families {
		total += fs.Requests
		if fs.OK != fs.Requests {
			t.Errorf("family %s: ok %d of %d requests", fam, fs.OK, fs.Requests)
		}
		// Every feasible base repeats many times across 120 requests,
		// so each family must see cache hits.
		if fs.HitRatio <= 0 {
			t.Errorf("family %s: hit ratio %.3f, want > 0 (%+v)", fam, fs.HitRatio, fs)
		}
	}
	if total != 120 {
		t.Errorf("family requests sum to %d, want 120", total)
	}

	// The manifest corpus is deterministic for a seed.
	p1, f1, err := manifestCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, f2, err := manifestCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if !sameProblem(p1[i], p2[i]) || f1[i] != f2[i] {
			t.Fatalf("manifest corpus not deterministic at %d", i)
		}
	}
}
