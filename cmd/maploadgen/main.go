// Command maploadgen replays a generated corpus of mapping problems
// against one or more mapserve nodes and reports latency percentiles,
// cache-disposition ratios (local versus peer), and error-budget SLO
// verdicts — as a human-readable text summary on stderr and a JSON
// report on stdout (or -json FILE).
//
// Usage:
//
//	maploadgen -targets http://a:8080,http://b:8080 -n 1000 -rps 200
//	maploadgen -inproc 3 -n 1000            # self-contained 3-node cluster
//
// The corpus is deterministic for a seed: -problems distinct base
// problems, each request a random axis permutation of one of them — so
// the corpus exercises exactly the canonicalization and cluster-wide
// deduplication the service is built around. Requests spread
// round-robin across targets; 429/503 answers are retried honoring the
// server's Retry-After hint plus jitter.
//
// With -tenants N every request carries an X-Mapserve-Tenant header
// rotating over N synthetic tenants, exercising the server's per-tenant
// accounting; -cluster-status polls /v1/cluster/status during the run
// and prints the server-side fleet and SLO verdicts next to the
// client-side ones.
//
// Exit status: 0 when every configured SLO passes, 1 otherwise.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lodim/internal/cluster"
	scenarios "lodim/internal/corpus"
	"lodim/internal/service"
)

type config struct {
	targets     []string
	inproc      int
	n           int
	problems    int
	corpusPath  string
	rps         float64
	concurrency int
	dims        int
	seed        int64
	timeout     time.Duration
	maxRetries  int
	jsonPath    string

	sloP99       time.Duration
	sloErrorRate float64
	sloHitRatio  float64

	tenants       int
	clusterStatus bool
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("maploadgen", flag.ContinueOnError)
	cfg := &config{}
	var targets string
	fs.StringVar(&targets, "targets", "", "comma-separated mapserve base URLs to drive")
	fs.IntVar(&cfg.inproc, "inproc", 0, "spin up an in-process cluster of this many nodes instead of -targets")
	fs.IntVar(&cfg.n, "n", 1000, "total requests to issue")
	fs.IntVar(&cfg.problems, "problems", 64, "distinct base problems in the corpus")
	fs.StringVar(&cfg.corpusPath, "corpus", "", "drive the feasible instances of a mapcorpus manifest instead of the synthetic corpus (-problems and -dims are then ignored)")
	fs.Float64Var(&cfg.rps, "rps", 0, "aggregate request rate (0 = unpaced)")
	fs.IntVar(&cfg.concurrency, "concurrency", 16, "concurrent client workers")
	fs.IntVar(&cfg.dims, "dims", 1, "target array dimensionality of every request")
	fs.Int64Var(&cfg.seed, "seed", 1, "corpus and jitter seed")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request client timeout")
	fs.IntVar(&cfg.maxRetries, "max-retries", 3, "retries per request on 429/503 (honoring Retry-After)")
	fs.StringVar(&cfg.jsonPath, "json", "", "write the JSON report here instead of stdout")
	fs.DurationVar(&cfg.sloP99, "slo-p99", 0, "fail if p99 latency exceeds this (0 = unchecked)")
	fs.Float64Var(&cfg.sloErrorRate, "slo-error-rate", 0.01, "fail if the error rate exceeds this fraction (negative = unchecked)")
	fs.Float64Var(&cfg.sloHitRatio, "slo-hit-ratio", -1, "fail if the aggregate cache-hit ratio falls below this fraction (negative = unchecked)")
	fs.IntVar(&cfg.tenants, "tenants", 0, "tag requests with X-Mapserve-Tenant headers rotating over this many synthetic tenants (0 = untagged)")
	fs.BoolVar(&cfg.clusterStatus, "cluster-status", false, "poll /v1/cluster/status during the run and report the server-side fleet verdicts next to the client-side ones")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cfg.targets = append(cfg.targets, strings.TrimSuffix(t, "/"))
		}
	}
	if (len(cfg.targets) == 0) == (cfg.inproc == 0) {
		return nil, errors.New("exactly one of -targets or -inproc is required")
	}
	if cfg.inproc < 0 || cfg.inproc > 16 {
		if cfg.inproc != 0 {
			return nil, fmt.Errorf("-inproc must be in [1, 16], got %d", cfg.inproc)
		}
	}
	if cfg.n < 1 {
		return nil, fmt.Errorf("-n must be >= 1, got %d", cfg.n)
	}
	if cfg.problems < 1 {
		return nil, fmt.Errorf("-problems must be >= 1, got %d", cfg.problems)
	}
	if cfg.concurrency < 1 {
		return nil, fmt.Errorf("-concurrency must be >= 1, got %d", cfg.concurrency)
	}
	if cfg.dims < 1 || cfg.dims > 2 {
		return nil, fmt.Errorf("-dims must be 1 or 2, got %d", cfg.dims)
	}
	if cfg.rps < 0 {
		return nil, fmt.Errorf("-rps must be >= 0, got %g", cfg.rps)
	}
	if cfg.maxRetries < 0 {
		return nil, fmt.Errorf("-max-retries must be >= 0, got %d", cfg.maxRetries)
	}
	if cfg.tenants < 0 {
		return nil, fmt.Errorf("-tenants must be >= 0, got %d", cfg.tenants)
	}
	return cfg, nil
}

// problem is one corpus entry: an inline map request body.
type problem struct {
	Bounds       []int64   `json:"bounds"`
	Dependencies [][]int64 `json:"dependencies"`
	Dims         int       `json:"dims"`
	MaxEntry     int64     `json:"max_entry,omitempty"`
	MaxCost      int64     `json:"max_cost,omitempty"`
}

// corpus generates cfg.n request bodies over cfg.problems distinct base
// problems. Each request permutes its base problem's axes uniformly at
// random — permuted variants canonicalize to one key, so the generated
// load measures the cache and dedup tiers, not just raw search.
func corpus(cfg *config) []problem {
	rng := rand.New(rand.NewSource(cfg.seed))
	// Dependence pools: every base problem takes the unit dependencies
	// (always feasible) plus up to two extras that keep searches cheap
	// while making the problems structurally distinct.
	extras := [][]int64{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}}
	bases := make([]problem, cfg.problems)
	for i := range bases {
		bounds := []int64{int64(rng.Intn(5) + 2), int64(rng.Intn(5) + 2), int64(rng.Intn(5) + 2)}
		deps := [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
		for _, e := range extras {
			if rng.Intn(2) == 1 {
				deps = append(deps, e)
			}
		}
		bases[i] = problem{Bounds: bounds, Dependencies: deps, Dims: cfg.dims}
	}
	out := make([]problem, cfg.n)
	for i := range out {
		// Touch every base once before sampling uniformly, so small -n
		// still covers the whole corpus.
		base := bases[i%cfg.problems]
		if i >= cfg.problems {
			base = bases[rng.Intn(cfg.problems)]
		}
		out[i] = permute(rng, base)
	}
	return out
}

// manifestCorpus generates cfg.n request bodies from the feasible
// instances of a mapcorpus manifest, each a random axis permutation of
// one instance, and returns the per-request family labels so the
// report can attribute hit ratios per scenario family.
func manifestCorpus(cfg *config) ([]problem, []string, error) {
	_, insts, err := scenarios.ReadFile(cfg.corpusPath)
	if err != nil {
		return nil, nil, err
	}
	feasible := insts[:0:0]
	for _, inst := range insts {
		if inst.Feasible {
			feasible = append(feasible, inst)
		}
	}
	if len(feasible) == 0 {
		return nil, nil, fmt.Errorf("manifest %s has no feasible instances", cfg.corpusPath)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	out := make([]problem, cfg.n)
	families := make([]string, cfg.n)
	for i := range out {
		inst := feasible[i%len(feasible)]
		if i >= len(feasible) {
			inst = feasible[rng.Intn(len(feasible))]
		}
		base := problem{
			Bounds: inst.Bounds, Dependencies: inst.Dependencies, Dims: inst.Dims,
			MaxEntry: inst.MaxEntry, MaxCost: inst.MaxCost,
		}
		out[i] = permute(rng, base)
		families[i] = inst.Family
	}
	return out, families, nil
}

// permute relabels a problem's axes by a random permutation — a
// different JSON body, the same canonical problem.
func permute(rng *rand.Rand, p problem) problem {
	n := len(p.Bounds)
	perm := rng.Perm(n)
	out := problem{Bounds: make([]int64, n), Dependencies: make([][]int64, len(p.Dependencies)), Dims: p.Dims, MaxEntry: p.MaxEntry, MaxCost: p.MaxCost}
	for i, ax := range perm {
		out.Bounds[i] = p.Bounds[ax]
	}
	for d, dep := range p.Dependencies {
		v := make([]int64, n)
		for i, ax := range perm {
			v[i] = dep[ax]
		}
		out.Dependencies[d] = v
	}
	return out
}

// outcome is one request's record.
type outcome struct {
	status     int
	cache      string
	retryAfter time.Duration
	latency    time.Duration
	retries    int
	err        error
}

// driver issues the corpus against the targets.
type driver struct {
	cfg     *config
	client  *http.Client
	pace    <-chan struct{}
	results []outcome
}

func (d *driver) worker(wg *sync.WaitGroup, jobs <-chan int, bodies [][]byte, seed int64) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(seed))
	for i := range jobs {
		if d.pace != nil {
			<-d.pace
		}
		d.results[i] = d.issue(rng, d.cfg.targets[i%len(d.cfg.targets)], bodies[i], i)
	}
}

// issue posts one map request, retrying 429/503 with the server's
// Retry-After hint plus up to 250ms of jitter so synchronized retry
// herds cannot form.
func (d *driver) issue(rng *rand.Rand, target string, body []byte, idx int) outcome {
	start := time.Now()
	retries := 0
	for attempt := 0; ; attempt++ {
		out := d.post(target, body, idx)
		retryable := out.err == nil &&
			(out.status == http.StatusTooManyRequests || out.status == http.StatusServiceUnavailable)
		if !retryable || attempt >= d.cfg.maxRetries {
			out.retries = retries
			out.latency = time.Since(start)
			return out
		}
		retries++
		delay := time.Second
		if out.retryAfter > 0 {
			delay = out.retryAfter
		}
		time.Sleep(delay + time.Duration(rng.Intn(250))*time.Millisecond)
	}
}

func (d *driver) post(target string, body []byte, idx int) outcome {
	req, err := http.NewRequest("POST", target+"/v1/map", bytes.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if d.cfg.tenants > 0 {
		req.Header.Set(service.TenantHeader, fmt.Sprintf("tenant-%03d", idx%d.cfg.tenants))
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return outcome{err: err}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	out := outcome{status: resp.StatusCode, cache: resp.Header.Get("X-Mapserve-Cache")}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		out.retryAfter = time.Duration(secs) * time.Second
	}
	return out
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "maploadgen:", err)
		os.Exit(2)
	}
	report, pass, err := run(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maploadgen:", err)
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maploadgen:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(report)
	if !pass {
		os.Exit(1)
	}
}

// run executes the whole load test and renders the text summary to
// text. Split from main for tests.
func run(cfg *config, text io.Writer) (*report, bool, error) {
	var shutdown func()
	if cfg.inproc > 0 {
		targets, stop, err := startInprocCluster(cfg.inproc)
		if err != nil {
			return nil, false, err
		}
		cfg.targets = targets
		shutdown = stop
	}
	if shutdown != nil {
		defer shutdown()
	}

	var probs []problem
	var families []string
	if cfg.corpusPath != "" {
		var err error
		probs, families, err = manifestCorpus(cfg)
		if err != nil {
			return nil, false, err
		}
	} else {
		probs = corpus(cfg)
	}
	bodies := make([][]byte, len(probs))
	for i, p := range probs {
		b, err := json.Marshal(p)
		if err != nil {
			return nil, false, err
		}
		bodies[i] = b
	}

	d := &driver{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.timeout},
		results: make([]outcome, cfg.n),
	}
	var stopPace chan struct{}
	if cfg.rps > 0 {
		pace := make(chan struct{})
		stopPace = make(chan struct{})
		interval := time.Duration(float64(time.Second) / cfg.rps)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					select {
					case pace <- struct{}{}:
					case <-stopPace:
						return
					}
				case <-stopPace:
					return
				}
			}
		}()
		d.pace = pace
	}

	var poller *statusPoller
	if cfg.clusterStatus {
		poller = startStatusPoller(d.client, cfg.targets[0])
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go d.worker(&wg, jobs, bodies, cfg.seed+int64(w)+1)
	}
	for i := 0; i < cfg.n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	if stopPace != nil {
		close(stopPace)
	}

	rep := summarize(cfg, families, d.results, wall)
	if poller != nil {
		rep.Server = poller.finish()
		if rep.Server == nil {
			fmt.Fprintln(text, "maploadgen: /v1/cluster/status never answered; no server-side verdicts")
		}
	}
	pass := evaluateSLOs(cfg, rep)
	writeText(text, cfg, rep)
	return rep, pass, nil
}

// statusPoller samples /v1/cluster/status while the load runs, so the
// server-side verdicts in the report reflect the run itself, not just
// its aftermath.
type statusPoller struct {
	client *http.Client
	target string
	stop   chan struct{}
	done   chan struct{}

	mu    sync.Mutex
	polls int
	last  *service.ClusterStatusResponse
}

func startStatusPoller(client *http.Client, target string) *statusPoller {
	p := &statusPoller{client: client, target: target, stop: make(chan struct{}), done: make(chan struct{})}
	go p.loop()
	return p
}

func (p *statusPoller) loop() {
	defer close(p.done)
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		p.poll()
		select {
		case <-tick.C:
		case <-p.stop:
			return
		}
	}
}

func (p *statusPoller) poll() {
	cs, err := fetchClusterStatus(p.client, p.target)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.polls++
	p.last = cs
	p.mu.Unlock()
}

// finish stops the poller, takes one final sample after the load has
// fully drained, and returns the server-side view — nil when the
// endpoint never answered.
func (p *statusPoller) finish() *serverView {
	close(p.stop)
	<-p.done
	p.poll()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.last == nil {
		return nil
	}
	return &serverView{Polls: p.polls, Fleet: p.last.Fleet}
}

func fetchClusterStatus(client *http.Client, target string) (*service.ClusterStatusResponse, error) {
	resp, err := client.Get(target + "/v1/cluster/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster status: HTTP %d", resp.StatusCode)
	}
	var cs service.ClusterStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// report is the JSON document maploadgen emits.
type report struct {
	Tool      string             `json:"tool"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Targets   []string           `json:"targets"`
	Requests  int                `json:"requests"`
	Problems  int                `json:"problems"`
	Dims      int                `json:"dims"`
	Seed      int64              `json:"seed"`
	RPS       float64            `json:"rps_target"`
	Workers   int                `json:"concurrency"`
	WallSecs  float64            `json:"wall_seconds"`
	Achieved  float64            `json:"achieved_rps"`
	OK        int                `json:"ok"`
	Errors    int                `json:"errors"`
	Retries   int                `json:"retries"`
	ByStatus  map[string]int     `json:"by_status"`
	LatencyMS map[string]float64 `json:"latency_ms"`
	Cache     map[string]int     `json:"cache"`
	Ratios    map[string]float64 `json:"ratios"`
	// Families attributes outcomes per scenario family when the corpus
	// comes from a mapcorpus manifest (-corpus).
	Families map[string]*famStats `json:"families,omitempty"`
	SLOs     []sloVerdict         `json:"slos"`
	// Server is the fleet-side view sampled from /v1/cluster/status when
	// -cluster-status is set.
	Server *serverView `json:"server,omitempty"`
}

// serverView is the server-side fleet status seen during the run.
type serverView struct {
	Polls int                 `json:"polls"`
	Fleet service.FleetStatus `json:"fleet"`
}

// famStats is one scenario family's slice of a corpus-driven run.
type famStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Hits     int     `json:"hits"`
	HitRatio float64 `json:"hit_ratio"`
}

type sloVerdict struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

func summarize(cfg *config, families []string, results []outcome, wall time.Duration) *report {
	rep := &report{
		Tool: "maploadgen", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Targets: cfg.targets, Requests: len(results), Problems: cfg.problems,
		Dims: cfg.dims, Seed: cfg.seed, RPS: cfg.rps, Workers: cfg.concurrency,
		WallSecs: wall.Seconds(),
		ByStatus: map[string]int{}, Cache: map[string]int{}, Ratios: map[string]float64{},
	}
	if wall > 0 {
		rep.Achieved = float64(len(results)) / wall.Seconds()
	}
	var lats []float64
	for _, r := range results {
		rep.Retries += r.retries
		if r.err != nil {
			rep.ByStatus["transport_error"]++
			rep.Errors++
			continue
		}
		rep.ByStatus[strconv.Itoa(r.status)]++
		if r.status != http.StatusOK {
			rep.Errors++
			continue
		}
		rep.OK++
		lats = append(lats, float64(r.latency.Nanoseconds())/1e6)
		if r.cache != "" {
			rep.Cache[r.cache]++
		}
	}
	sort.Float64s(lats)
	rep.LatencyMS = map[string]float64{
		"p50": percentile(lats, 0.50),
		"p95": percentile(lats, 0.95),
		"p99": percentile(lats, 0.99),
		"max": percentile(lats, 1.0),
	}
	if n := len(lats); n > 0 {
		var sum float64
		for _, l := range lats {
			sum += l
		}
		rep.LatencyMS["mean"] = sum / float64(n)
	}
	if rep.OK > 0 {
		ok := float64(rep.OK)
		hit := float64(rep.Cache["hit"])
		peerHit := float64(rep.Cache["peer_hit"])
		shared := float64(rep.Cache["shared"] + rep.Cache["peer_shared"])
		searches := float64(rep.Cache["miss"] + rep.Cache["peer_miss"])
		rep.Ratios["local_hit"] = hit / ok
		rep.Ratios["peer_hit"] = peerHit / ok
		// Aggregate: every response that did not require a fresh search.
		rep.Ratios["aggregate_hit"] = (hit + peerHit + shared) / ok
		rep.Ratios["search"] = searches / ok
	}
	rep.Ratios["error_rate"] = float64(rep.Errors) / float64(len(results))
	if len(families) == len(results) && len(families) > 0 {
		rep.Families = map[string]*famStats{}
		for i, r := range results {
			fs := rep.Families[families[i]]
			if fs == nil {
				fs = &famStats{}
				rep.Families[families[i]] = fs
			}
			fs.Requests++
			if r.err != nil || r.status != http.StatusOK {
				continue
			}
			fs.OK++
			switch r.cache {
			case "hit", "peer_hit", "shared", "peer_shared":
				fs.Hits++
			}
		}
		for _, fs := range rep.Families {
			if fs.OK > 0 {
				fs.HitRatio = float64(fs.Hits) / float64(fs.OK)
			}
		}
	}
	return rep
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func evaluateSLOs(cfg *config, rep *report) bool {
	pass := true
	add := func(name string, target, actual float64, ok bool) {
		rep.SLOs = append(rep.SLOs, sloVerdict{Name: name, Target: target, Actual: actual, Pass: ok})
		pass = pass && ok
	}
	if cfg.sloErrorRate >= 0 {
		er := rep.Ratios["error_rate"]
		add("error_rate_max", cfg.sloErrorRate, er, er <= cfg.sloErrorRate)
	}
	if cfg.sloP99 > 0 {
		p99 := rep.LatencyMS["p99"]
		target := float64(cfg.sloP99.Nanoseconds()) / 1e6
		add("p99_latency_ms_max", target, p99, p99 <= target)
	}
	if cfg.sloHitRatio >= 0 {
		hr := rep.Ratios["aggregate_hit"]
		add("aggregate_hit_ratio_min", cfg.sloHitRatio, hr, hr >= cfg.sloHitRatio)
	}
	return pass
}

func writeText(w io.Writer, cfg *config, rep *report) {
	fmt.Fprintf(w, "maploadgen: %d requests over %d targets in %.2fs (%.1f req/s achieved, %.0f targeted)\n",
		rep.Requests, len(cfg.targets), rep.WallSecs, rep.Achieved, cfg.rps)
	fmt.Fprintf(w, "  ok %d, errors %d, retries %d; statuses %v\n", rep.OK, rep.Errors, rep.Retries, rep.ByStatus)
	fmt.Fprintf(w, "  latency ms: p50 %.2f, p95 %.2f, p99 %.2f, mean %.2f, max %.2f\n",
		rep.LatencyMS["p50"], rep.LatencyMS["p95"], rep.LatencyMS["p99"], rep.LatencyMS["mean"], rep.LatencyMS["max"])
	fmt.Fprintf(w, "  cache: %v\n", rep.Cache)
	fmt.Fprintf(w, "  ratios: local_hit %.3f, peer_hit %.3f, aggregate_hit %.3f, search %.3f, error_rate %.4f\n",
		rep.Ratios["local_hit"], rep.Ratios["peer_hit"], rep.Ratios["aggregate_hit"], rep.Ratios["search"], rep.Ratios["error_rate"])
	if len(rep.Families) > 0 {
		fams := make([]string, 0, len(rep.Families))
		for f := range rep.Families {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		for _, f := range fams {
			fs := rep.Families[f]
			fmt.Fprintf(w, "  family %-12s requests %4d, ok %4d, hit_ratio %.3f\n", f, fs.Requests, fs.OK, fs.HitRatio)
		}
	}
	for _, s := range rep.SLOs {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  slo %-24s target %.4f actual %.4f  %s\n", s.Name, s.Target, s.Actual, verdict)
	}
	if rep.Server != nil {
		f := rep.Server.Fleet
		fmt.Fprintf(w, "  fleet %s: %d node(s), %d ok, %d degraded, %d unreachable; %d requests (%d status polls)\n",
			f.Status, f.Nodes, f.Healthy, f.Degraded, f.Unreachable, f.Requests, rep.Server.Polls)
		for _, ob := range f.SLO {
			verdict := "OK"
			if ob.Breached {
				verdict = "BREACHED on " + strings.Join(ob.BreachedNodes, ",")
			}
			fmt.Fprintf(w, "  slo server:%-17s burn fast %.2f slow %.2f  %s\n", ob.Objective, ob.MaxFastBurn, ob.MaxSlowBurn, verdict)
		}
		for _, tu := range f.Tenants {
			fmt.Fprintf(w, "  tenant %-16s requests %5d, cache hits %5d, search ms %6d, rejections %d\n",
				tu.Tenant, tu.Requests, tu.CacheHits, tu.SearchMillis, tu.QueueRejections)
		}
	}
}

// startInprocCluster builds a self-contained cfg-node mapserve cluster
// on loopback listeners and returns its base URLs plus a shutdown
// function. Ports are bound before the services are built so every
// node knows the full membership up front.
func startInprocCluster(n int) ([]string, func(), error) {
	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, nil, err
		}
		listeners[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("node%d", i), URL: "http://" + ln.Addr().String()}
	}
	targets := make([]string, n)
	servers := make([]*http.Server, n)
	services := make([]*service.Service, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{
			Cluster: &service.ClusterConfig{Self: members[i], Peers: members},
		})
		services[i] = svc
		srv := &http.Server{Handler: service.NewHandler(svc)}
		servers[i] = srv
		go srv.Serve(listeners[i])
		targets[i] = members[i].URL
	}
	stop := func() {
		for _, srv := range servers {
			srv.Close()
		}
		for _, svc := range services {
			svc.Close()
		}
	}
	return targets, stop, nil
}
