package mapping_test

import (
	"fmt"

	"lodim/mapping"
)

// Problem 6.1 (paper future work): given Example 5.1's schedule, find a
// cheaper array than the paper's 13-PE design.
func ExampleFindSpaceMapping() {
	algo := mapping.MatMul(4)
	res, err := mapping.FindSpaceMapping(algo, mapping.Vec(1, 4, 1), 1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("S =", res.Mapping.S.Row(0))
	fmt.Println("processors:", res.Processors)
	// Output:
	// S = [0 1 -1]
	// processors: 9
}

// Problem 6.2: joint optimization beats Example 5.2's fixed-S optimum.
func ExampleFindJointMapping() {
	algo := mapping.TransitiveClosure(4)
	res, err := mapping.FindJointMapping(algo, 1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("t =", res.Time, "(paper's fixed-S optimum: 29)")
	// Output:
	// t = 25 (paper's fixed-S optimum: 29)
}

// The generic word-to-bit-level expansion of the RAB pipeline.
func ExampleBitExpand() {
	word := mapping.MatMul(3)
	bit := mapping.BitExpand(word, 3)
	fmt.Println("n:", word.Dim(), "→", bit.Dim())
	fmt.Println("m:", word.NumDeps(), "→", bit.NumDeps())
	// Output:
	// n: 3 → 5
	// m: 3 → 6
}

// Multi-statement alignment internalizes a producer/consumer shift.
func ExampleAnalyzeMultiNest() {
	mn, err := mapping.ParseMultiNest("pipe", []string{"i"}, []int64{9}, []string{
		"B[i] = A[i] + 1",
		"C[i] = C[i-1] + B[i-3]",
	})
	if err != nil {
		panic(err)
	}
	ma, err := mapping.AnalyzeMultiNest(mn, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("offset of statement 2:", ma.Offsets[1])
	fmt.Println("cross edges internalized:", ma.Internalized)
	// Output:
	// offset of statement 2: [3]
	// cross edges internalized: 1
}

// The Smith normal form exposes the invariant factors of a mapping
// matrix — all ones exactly when the mapping is surjective onto Z^k.
func ExampleSmithNormalForm() {
	T := mapping.FromRows(
		[]int64{1, 1, -1},
		[]int64{1, 4, 1},
	)
	s, err := mapping.SmithNormalForm(T)
	if err != nil {
		panic(err)
	}
	fmt.Println("invariant factors:", s.InvariantFactors())
	// Output:
	// invariant factors: [1 1]
}

// The dataflow bound: no schedule can beat the critical path.
func ExampleAlgorithm_CriticalPath() {
	algo := mapping.MatMul(4)
	cp, err := algo.CriticalPath()
	if err != nil {
		panic(err)
	}
	fmt.Println("critical path:", cp, "(= 3μ+1)")
	// Output:
	// critical path: 13 (= 3μ+1)
}
