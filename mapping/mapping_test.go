package mapping_test

import (
	"math/rand"
	"testing"

	"lodim/mapping"
)

// TestQuickstartFlow exercises the documented entry path end to end:
// algorithm → optimal schedule → simulation with real data.
func TestQuickstartFlow(t *testing.T) {
	algo := mapping.MatMul(4)
	s := mapping.FromRows([]int64{1, 1, -1})
	res, err := mapping.FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 25 {
		t.Errorf("t = %d, want 25", res.Time)
	}

	rng := rand.New(rand.NewSource(1))
	n := 5
	a := make([][]int64, n)
	b := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			a[i][j] = rng.Int63n(19) - 9
			b[i][j] = rng.Int63n(19) - 9
		}
	}
	prog, err := mapping.NewMatMulProgram(4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mapping.NewSimulator(res.Mapping, prog, mapping.NearestNeighbor(1))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Conflicts) != 0 || len(run.Collisions) != 0 {
		t.Errorf("conflicts=%d collisions=%d", len(run.Conflicts), len(run.Collisions))
	}
	got := mapping.CollectMatMulOutputs(4, run.Outputs)
	want := mapping.MatMulReference(a, b)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestNewAlgorithmValidates(t *testing.T) {
	d := mapping.FromRows([]int64{1, 0}, []int64{0, 1})
	algo, err := mapping.NewAlgorithm("custom", mapping.Box(3, 3), d)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Dim() != 2 || algo.NumDeps() != 2 {
		t.Errorf("dims n=%d m=%d", algo.Dim(), algo.NumDeps())
	}
	if _, err := mapping.NewAlgorithm("bad", mapping.Box(3, 3, 3), d); err == nil {
		t.Error("mismatched D accepted")
	}
}

func TestDecideAndFeasibleFacade(t *testing.T) {
	T := mapping.FromRows([]int64{1, 7, 1, 1}, []int64{1, 7, 1, 0})
	set := mapping.Cube(4, 6)
	res, err := mapping.Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictFree {
		t.Error("Example 2.1 matrix reported conflict-free")
	}
	if mapping.Feasible(set, mapping.Vec(1, 0, -1, 0)) {
		t.Error("γ3 reported feasible")
	}
	if !mapping.Feasible(set, mapping.Vec(0, 1, -7, 0)) {
		t.Error("γ1 reported non-feasible")
	}
	free, witness := mapping.BruteForce(T, set)
	if free || witness == nil {
		t.Error("brute force disagrees")
	}
}

func TestHermiteNormalFormFacade(t *testing.T) {
	T := mapping.FromRows([]int64{1, 7, 1, 1}, []int64{1, 7, 1, 0})
	h, err := mapping.HermiteNormalForm(T)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		t.Error(err)
	}
	if len(h.NullBasis()) != 2 {
		t.Errorf("null basis size %d", len(h.NullBasis()))
	}
}

func TestUniqueConflictVectorFacade(t *testing.T) {
	T := mapping.FromRows([]int64{1, 1, -1}, []int64{1, 4, 1})
	g, err := mapping.UniqueConflictVector(T)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(mapping.Vec(5, -2, 3)) {
		t.Errorf("γ = %v", g)
	}
}

func TestILPFacade(t *testing.T) {
	algo := mapping.TransitiveClosure(4)
	s := mapping.FromRows([]int64{0, 0, 1})
	res, err := mapping.FindOptimalILP(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 29 {
		t.Errorf("t = %d, want 29", res.Time)
	}
}

func TestTotalTimeFacade(t *testing.T) {
	got, err := mapping.TotalTime(mapping.Vec(1, 4, 1), mapping.Cube(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Errorf("TotalTime = %d", got)
	}
}

func TestMachineFacade(t *testing.T) {
	m := mapping.NearestNeighbor(2)
	if m.Dim() != 2 {
		t.Errorf("dim %d", m.Dim())
	}
	m2 := mapping.FromPrimitives(mapping.Vec(1), mapping.Vec(-1))
	if m2.Dim() != 1 {
		t.Errorf("dim %d", m2.Dim())
	}
}

func TestSpaceAndJointOptimization(t *testing.T) {
	algo := mapping.MatMul(3)
	// Problem 6.1: given the schedule, find a cheaper array.
	sres, err := mapping.FindSpaceMapping(algo, mapping.Vec(1, 3, 1), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Processors < 1 || sres.Cost < sres.Processors {
		t.Errorf("degenerate metrics: %+v", sres)
	}
	// Problem 6.2: joint optimum at least ties the fixed-S optimum.
	jres, err := mapping.FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jres.Time > 16 { // μ(μ+2)+1 at μ=3
		t.Errorf("joint t = %d, want ≤ 16", jres.Time)
	}
	if free, _ := mapping.BruteForce(jres.Mapping.T, algo.Set); !free {
		t.Error("joint winner has conflicts")
	}
}

func TestFrontendFacade(t *testing.T) {
	nest, err := mapping.ParseNest("mm", []string{"i", "j", "k"}, []int64{3, 3, 3},
		"C[i,j] = C[i,j] + A[i,k]*B[k,j]")
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := mapping.AnalyzeNest(nest)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Algorithm.NumDeps() != 3 {
		t.Errorf("deps = %d", analysis.Algorithm.NumDeps())
	}
	bit := mapping.BitExpand(analysis.Algorithm, 2)
	if bit.Dim() != 5 || bit.NumDeps() != 6 {
		t.Errorf("bit expansion shape n=%d m=%d", bit.Dim(), bit.NumDeps())
	}
	// The derived word-level algorithm admits the paper's optimum.
	res, err := mapping.FindOptimal(analysis.Algorithm, mapping.FromRows([]int64{1, 1, -1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 16 { // μ(μ+2)+1 at μ=3
		t.Errorf("t = %d, want 16", res.Time)
	}
}

func TestMultiStatementFacade(t *testing.T) {
	mn, err := mapping.ParseMultiNest("pipe", []string{"i"}, []int64{9}, []string{
		"B[i] = A[i] + 1",
		"C[i] = C[i-1] + B[i-3]",
	})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := mapping.AnalyzeMultiNest(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Internalized != 1 {
		t.Errorf("internalized = %d", ma.Internalized)
	}
	if ma.Algorithm.NumDeps() < 1 {
		t.Fatal("no dependencies in merged algorithm")
	}
	// The merged 1-D algorithm maps onto a single processor: the C
	// recurrence serializes it with Π = [1].
	res, err := mapping.FindOptimal(ma.Algorithm, mapping.NewMatrix(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 10 { // μ+1 steps, the dataflow minimum
		t.Errorf("t = %d, want 10", res.Time)
	}
}

func TestNewAlgorithmConstructors(t *testing.T) {
	if mapping.MatVec(3, 3).Dim() != 2 {
		t.Error("matvec dim")
	}
	if mapping.EditDistance(3, 3).NumDeps() != 3 {
		t.Error("edit-distance deps")
	}
	if mapping.Jacobi2D(2, 3, 3).NumDeps() != 5 {
		t.Error("jacobi2d deps")
	}
	if mapping.Correlation(4, 2).Dim() != 2 {
		t.Error("correlation dim")
	}
}

func TestBitLevelConstructors(t *testing.T) {
	if got := mapping.BitLevelConvolution(4, 3, 3).Dim(); got != 4 {
		t.Errorf("bit-conv dim %d", got)
	}
	if got := mapping.BitLevelMatMul(3, 3).Dim(); got != 5 {
		t.Errorf("bit-matmul dim %d", got)
	}
	if got := mapping.SOR(4, 4).Dim(); got != 2 {
		t.Errorf("sor dim %d", got)
	}
	if got := mapping.LU(3).Dim(); got != 3 {
		t.Errorf("lu dim %d", got)
	}
	if got := mapping.Convolution(5, 2).Dim(); got != 2 {
		t.Errorf("conv dim %d", got)
	}
}
