package mapping_test

import (
	"errors"
	"math"
	"testing"

	"lodim/internal/verify"
	"lodim/mapping"
)

func TestDecideTable(t *testing.T) {
	cases := []struct {
		name string
		rows [][]int64
		set  mapping.IndexSet
		free bool
	}{
		{"paper example 2.1 conflicting", [][]int64{{1, 7, 1, 1}, {1, 7, 1, 0}}, mapping.Cube(4, 6), false},
		{"matmul winner k=2", [][]int64{{1, 1, -1}, {1, 2, 3}}, mapping.Cube(3, 4), true},
		{"paper pi [1,mu,1]", [][]int64{{1, 1, -1}, {1, 4, 1}}, mapping.Cube(3, 4), true},
		{"identity is injective", [][]int64{{1, 0}, {0, 1}}, mapping.Box(5, 5), true},
		{"projection collides", [][]int64{{1, 0}}, mapping.Box(5, 5), false},
		{"deep codimension free", [][]int64{{1, 5, 25}}, mapping.Cube(3, 2), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			T := mapping.FromRows(c.rows...)
			res, err := mapping.Decide(T, c.set)
			if err != nil {
				t.Fatal(err)
			}
			if res.ConflictFree != c.free {
				t.Errorf("Decide = %v (%s), want %v", res.ConflictFree, res.Method, c.free)
			}
			if free, witness := mapping.BruteForce(T, c.set); free != c.free {
				t.Errorf("BruteForce = %v (witness %v) disagrees", free, witness)
			}
		})
	}
}

func TestUniqueConflictVectorTable(t *testing.T) {
	cases := []struct {
		name    string
		rows    [][]int64
		want    []int64
		wantErr bool
	}{
		{"matmul S,Pi", [][]int64{{1, 1, -1}, {1, 4, 1}}, []int64{5, -2, 3}, false},
		{"axis drop", [][]int64{{1, 0, 0}, {0, 1, 0}}, []int64{0, 0, 1}, false},
		{"2d schedule row", [][]int64{{2, 3}}, []int64{3, -2}, false},
		{"rank deficient", [][]int64{{1, 1, 1}, {2, 2, 2}}, nil, true},
		{"zero matrix", [][]int64{{0, 0}}, nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := mapping.UniqueConflictVector(mapping.FromRows(c.rows...))
			if c.wantErr {
				if err == nil {
					t.Fatalf("got γ = %v, want error", g)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(mapping.Vec(c.want...)) {
				t.Errorf("γ = %v, want %v", g, c.want)
			}
		})
	}
}

func TestFeasibleTable(t *testing.T) {
	set := mapping.Box(2, 3, 4)
	cases := []struct {
		gamma []int64
		want  bool
	}{
		{[]int64{3, 0, 0}, true},  // |3| > μ1 = 2
		{[]int64{2, 0, 0}, false}, // equality is not enough
		{[]int64{0, 4, 0}, true},  // |4| > μ2 = 3
		{[]int64{0, -4, 0}, true}, // sign-symmetric
		{[]int64{2, 3, 4}, false}, // every entry within bounds
		{[]int64{0, 0, -5}, true}, // |−5| > μ3 = 4
		{[]int64{1, 1, 1}, false}, // in-box conflict vector
		{[]int64{0, 0, 0}, false}, // zero never escapes the box
	}
	for _, c := range cases {
		if got := mapping.Feasible(set, mapping.Vec(c.gamma...)); got != c.want {
			t.Errorf("Feasible(%v) = %v, want %v", c.gamma, got, c.want)
		}
	}
}

func TestTotalTimeTable(t *testing.T) {
	cases := []struct {
		pi   []int64
		mu   []int64
		want int64
	}{
		{[]int64{1, 4, 1}, []int64{4, 4, 4}, 25},   // paper: μ(μ+2)+1
		{[]int64{1, 2, 3}, []int64{4, 4, 4}, 25},   // equal-cost optimum
		{[]int64{-1, 2, -3}, []int64{4, 4, 4}, 25}, // |π_i| is what counts
		{[]int64{1}, []int64{9}, 10},
		{[]int64{0, 0, 0}, []int64{4, 4, 4}, 1}, // degenerate zero schedule
		{[]int64{1, 3, 1}, []int64{2, 3, 4}, 16},
	}
	for _, c := range cases {
		got, err := mapping.TotalTime(mapping.Vec(c.pi...), mapping.Box(c.mu...))
		if err != nil {
			t.Errorf("TotalTime(%v, %v): unexpected error %v", c.pi, c.mu, err)
			continue
		}
		if got != c.want {
			t.Errorf("TotalTime(%v, %v) = %d, want %d", c.pi, c.mu, got, c.want)
		}
	}
	// Regression: Σ|π_i|·μ_i beyond int64 used to wrap to a negative
	// total time; it must surface as an overflow error instead.
	huge := int64(math.MaxInt64 / 2)
	if got, err := mapping.TotalTime(mapping.Vec(3, 1), mapping.Box(huge, 1)); err == nil {
		t.Errorf("TotalTime overflow: got %d, want error", got)
	}
}

func TestNewMappingErrorPaths(t *testing.T) {
	algo := mapping.MatMul(4)
	good := mapping.FromRows([]int64{1, 1, -1})
	cases := []struct {
		name string
		s    *mapping.Matrix
		pi   mapping.Vector
	}{
		{"S wrong width", mapping.FromRows([]int64{1, 1}), mapping.Vec(1, 2, 3)},
		{"Pi wrong length", good, mapping.Vec(1, 2)},
		{"Pi violates ΠD>0", good, mapping.Vec(1, -1, 1)},
		{"Pi zero", good, mapping.Vec(0, 0, 0)},
		{"rank-deficient T", mapping.FromRows([]int64{1, 2, 3}), mapping.Vec(1, 2, 3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if m, err := mapping.NewMapping(algo, c.s, c.pi); err == nil {
				t.Errorf("accepted invalid mapping: %+v", m)
			}
		})
	}
	m, err := mapping.NewMapping(algo, good, mapping.Vec(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 || m.TotalTime() != 25 {
		t.Errorf("K=%d t=%d, want 2 and 25", m.K(), m.TotalTime())
	}
}

func TestVerifyFacade(t *testing.T) {
	algo := mapping.MatMul(4)
	m, err := mapping.NewMapping(algo, mapping.FromRows([]int64{1, 1, -1}), mapping.Vec(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := mapping.Verify(m)
	if err != nil {
		t.Fatalf("Verify rejected the documented optimum: %v", err)
	}
	if !cert.Valid || !cert.ConflictFree || cert.TotalTime != 25 {
		t.Errorf("certificate: valid=%v free=%v t=%d", cert.Valid, cert.ConflictFree, cert.TotalTime)
	}
	if err := cert.Check(algo, m.S, m.Pi); err != nil {
		t.Errorf("certificate fails its own checker: %v", err)
	}

	// A corrupted mapping (bypassing NewMapping's validation) must come
	// back with a named failing witness and a typed error.
	bad := *m
	bad.Pi = mapping.Vec(1, -1, 1)
	bad.T = bad.S.AppendRow(bad.Pi)
	cert, err = mapping.Verify(&bad)
	if err == nil || cert == nil {
		t.Fatalf("corrupted mapping accepted (cert=%v err=%v)", cert, err)
	}
	var fe *verify.FailureError
	if !errors.As(err, &fe) || fe.Witness != verify.WitnessSchedule {
		t.Errorf("err = %v, want *FailureError on %q", err, verify.WitnessSchedule)
	}
	if cert.FailedWitness != verify.WitnessSchedule {
		t.Errorf("failed witness = %q", cert.FailedWitness)
	}

	// VerifyWithOptions: simulation cross-check on the small instance.
	cert, err = mapping.VerifyWithOptions(m, &mapping.VerifyOptions{Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Simulation == nil || !cert.Simulation.Ran || !cert.Simulation.Agrees {
		t.Errorf("simulation witness missing: %+v", cert.Simulation)
	}
}
