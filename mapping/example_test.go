package mapping_test

import (
	"fmt"

	"lodim/mapping"
)

// The headline flow: find the time-optimal conflict-free schedule for
// matrix multiplication on a linear processor array (paper Example 5.1).
func ExampleFindOptimal() {
	algo := mapping.MatMul(4)
	S := mapping.FromRows([]int64{1, 1, -1})
	res, err := mapping.FindOptimal(algo, S, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("t =", res.Time, "=", "μ(μ+2)+1")
	fmt.Println("certificate:", res.Conflict.Method)
	// Output:
	// t = 25 = μ(μ+2)+1
	// certificate: theorem-3.1
}

// The ILP engine solves the same problem through the paper's integer
// programming formulation (5.1)–(5.2).
func ExampleFindOptimalILP() {
	algo := mapping.TransitiveClosure(4)
	S := mapping.FromRows([]int64{0, 0, 1})
	res, err := mapping.FindOptimalILP(algo, S, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("Π° =", res.Mapping.Pi)
	fmt.Println("t =", res.Time, "=", "μ(μ+3)+1")
	// Output:
	// Π° = [5 1 1]
	// t = 29 = μ(μ+3)+1
}

// Deciding conflict-freeness of a specific mapping matrix — here the
// paper's Example 2.1, which has the non-feasible conflict vector
// [1 0 -1 0].
func ExampleDecide() {
	T := mapping.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	res, err := mapping.Decide(T, mapping.Cube(4, 6))
	if err != nil {
		panic(err)
	}
	fmt.Println("conflict-free:", res.ConflictFree)
	// Output:
	// conflict-free: false
}

// The unique conflict vector of a codimension-one mapping (Theorem 3.1
// / Equation 3.2), for the matmul mapping with Π = [1,4,1].
func ExampleUniqueConflictVector() {
	T := mapping.FromRows(
		[]int64{1, 1, -1},
		[]int64{1, 4, 1},
	)
	gamma, err := mapping.UniqueConflictVector(T)
	if err != nil {
		panic(err)
	}
	fmt.Println("γ =", gamma)
	fmt.Println("feasible on μ=4 cube:", mapping.Feasible(mapping.Cube(3, 4), gamma))
	// Output:
	// γ = [5 -2 3]
	// feasible on μ=4 cube: true
}

// Theorem 2.2: a conflict vector is feasible iff some entry exceeds its
// index-set bound.
func ExampleFeasible() {
	set := mapping.Box(4, 4)
	fmt.Println(mapping.Feasible(set, mapping.Vec(1, 1)))
	fmt.Println(mapping.Feasible(set, mapping.Vec(3, 5)))
	// Output:
	// false
	// true
}

// The loop-nest front end derives the paper's Equation 3.4 dependence
// matrix from source text.
func ExampleAnalyzeNest() {
	nest, err := mapping.ParseNest("matmul", []string{"i", "j", "k"}, []int64{4, 4, 4},
		"C[i,j] = C[i,j] + A[i,k] * B[k,j]")
	if err != nil {
		panic(err)
	}
	analysis, err := mapping.AnalyzeNest(nest)
	if err != nil {
		panic(err)
	}
	for _, d := range analysis.Dependencies {
		fmt.Printf("%v %s\n", d.Vector, d.Kind)
	}
	// Output:
	// [0 0 1] flow
	// [0 1 0] uniformized
	// [1 0 0] uniformized
}

// Hermite normal form of a mapping matrix: TU = [L, 0] with the
// trailing columns of U spanning the conflict-vector lattice.
func ExampleHermiteNormalForm() {
	T := mapping.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	h, err := mapping.HermiteNormalForm(T)
	if err != nil {
		panic(err)
	}
	fmt.Println("verify:", h.Verify())
	fmt.Println("nullity:", h.NullityDim())
	// Output:
	// verify: <nil>
	// nullity: 2
}
