module lodim

go 1.22
